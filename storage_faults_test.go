// Storage-tier fault-tolerance acceptance tests (DESIGN.md §15): a burst-
// buffer node lost mid-dump, flaky drain acknowledgments, and a dead pvfs
// server must all end in checksum-verified, byte-exact data — and the
// partitioned protocol's goodput must degrade strictly less than the
// unpartitioned one's under the same staging-node loss. A seeded chaos
// sweep pins that randomized fault schedules stay bit-deterministic across
// engine worker counts and repeated runs, with the integrity ledger's
// audit passing every time.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

const burstProcs = 16

// burstPreset is the shared configuration: the bench geometry on the bb
// backend, drain throttled so the lost-bb-node scenario's node death at
// 2 ms catches absorbed-but-undrained extents (the interesting case).
func burstPreset() experiments.Preset {
	p := experiments.BenchPreset()
	p.Backend = "bb"
	p.BBDrainBW = 2e8
	p.BurstInterleave = 256
	return p
}

// TestCheckpointBurstSurvivesBBNodeLoss is the tentpole acceptance test: a
// checkpoint burst on the staging tier with a node lost mid-dump must (a)
// actually lose staged bytes and re-dump them, (b) end checksum-verified
// and byte-exact at both group counts, and (c) cost ParColl (groups=4)
// strictly less goodput degradation than the unpartitioned protocol
// (groups=1) under the identical plan — the paper's partitioning argument
// extended to storage-tier failures.
func TestCheckpointBurstSurvivesBBNodeLoss(t *testing.T) {
	p := burstPreset()
	plan, err := fault.Scenario(fault.LostBBNode)
	if err != nil {
		t.Fatal(err)
	}
	deg := map[int]float64{}
	for _, groups := range []int{1, 4} {
		healthy := p.CheckpointBurstUnderFailure(burstProcs, groups, 1, nil)
		faulted := p.CheckpointBurstUnderFailure(burstProcs, groups, 1, plan)
		if !healthy.Verified {
			t.Fatalf("groups=%d: healthy burst failed verification", groups)
		}
		if !faulted.Verified {
			t.Fatalf("groups=%d: burst under %s failed checksum-verified read-back", groups, plan.Name)
		}
		if faulted.LostBytes == 0 {
			t.Fatalf("groups=%d: node death at %gs lost no staged bytes (fault never bit)", groups, 2e-3)
		}
		if faulted.Redumped < faulted.LostBytes {
			t.Fatalf("groups=%d: re-dumped %d of %d lost bytes", groups, faulted.Redumped, faulted.LostBytes)
		}
		if healthy.Goodput <= 0 || faulted.Goodput <= 0 {
			t.Fatalf("groups=%d: non-positive goodput (healthy %g, faulted %g)", groups, healthy.Goodput, faulted.Goodput)
		}
		deg[groups] = healthy.Goodput / faulted.Goodput
		if deg[groups] <= 1 {
			t.Errorf("groups=%d: failure did not cost goodput (degradation factor %g)", groups, deg[groups])
		}
	}
	if deg[4] >= deg[1] {
		t.Errorf("ParColl goodput degradation %gx not strictly smaller than ext2ph's %gx", deg[4], deg[1])
	}
}

// TestCheckpointBurstUnderFlakyDrain: flaky drain acknowledgments cost
// retry time at the Drain barrier, never data — the run stays verified and
// strictly slower than healthy.
func TestCheckpointBurstUnderFlakyDrain(t *testing.T) {
	p := burstPreset()
	plan, err := fault.Scenario(fault.FlakyDrain)
	if err != nil {
		t.Fatal(err)
	}
	healthy := p.CheckpointBurstUnderFailure(burstProcs, 4, 1, nil)
	faulted := p.CheckpointBurstUnderFailure(burstProcs, 4, 1, plan)
	if !healthy.Verified || !faulted.Verified {
		t.Fatalf("verification: healthy=%v faulted=%v, want both", healthy.Verified, faulted.Verified)
	}
	if faulted.LostBytes != 0 {
		t.Fatalf("flaky drains lost %d bytes; acknowledgments are flaky, durability is not", faulted.LostBytes)
	}
	if faulted.Elapsed <= healthy.Elapsed {
		t.Errorf("drain retries cost no time: faulted %g s <= healthy %g s", faulted.Elapsed, healthy.Elapsed)
	}
}

// TestTileUnderDeadPVFSServer: the dead-pvfs-server scenario on the listio
// farm — the vectored call falls back to scalar retries against the
// surviving servers and the write completes verified.
func TestTileUnderDeadPVFSServer(t *testing.T) {
	p := experiments.BenchPreset()
	p.Backend = "listio"
	plan, err := fault.Scenario(fault.DeadPVFSServer)
	if err != nil {
		t.Fatal(err)
	}
	for _, groups := range []int{1, 4} {
		pt := p.TileUnderFailure(burstProcs, groups, plan)
		if !pt.Verified {
			t.Errorf("groups=%d: tile write under %s failed verification", groups, plan.Name)
		}
	}
}

// TestBurstUnderFailureDeterministic pins the acceptance point bit-exact
// across engine worker counts and repeated runs: the whole recovery path —
// node death, punch, typed error, re-dump, ledger audit — replays
// identically.
func TestBurstUnderFailureDeterministic(t *testing.T) {
	p := burstPreset()
	plan, err := fault.Scenario(fault.LostBBNode)
	if err != nil {
		t.Fatal(err)
	}
	var ref string
	for _, workers := range []int{1, 4} {
		q := p
		q.Workers = workers
		for run := 0; run < 2; run++ {
			pt := q.CheckpointBurstUnderFailure(burstProcs, 4, 1, plan)
			got := fmt.Sprintf("%+v", pt)
			if ref == "" {
				ref = got
			} else if got != ref {
				t.Fatalf("workers=%d run=%d diverged:\n  got: %s\n  ref: %s", workers, run, got, ref)
			}
		}
	}
}

// TestChaosStorageFaults is the seeded chaos sweep: randomized storage-
// fault schedules (node deaths at random times plus flaky drain windows),
// each run at 1 and 4 groups and 1 and 4 engine workers, twice. Every
// combination must verify (ledger audit included, inside the runner) and
// every replica must land bit-identical.
func TestChaosStorageFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep runs many replicated simulations")
	}
	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < 3; i++ {
		plan := &fault.Plan{
			Name:    fmt.Sprintf("chaos-%d", i),
			BBFails: []fault.BBFail{{Node: rng.Intn(burstProcs / 2), At: 5e-4 + rng.Float64()*4e-3}},
			DrainFails: []fault.DrainFail{{
				Node: -1, Prob: 0.2 + rng.Float64()*0.5,
				At: 0, For: 2e-3 + rng.Float64()*4e-3, Every: 1.5e-2,
			}},
		}
		for _, groups := range []int{1, 4} {
			var ref string
			for _, workers := range []int{1, 4} {
				p := burstPreset()
				p.Workers = workers
				for run := 0; run < 2; run++ {
					pt := p.CheckpointBurstUnderFailure(burstProcs, groups, 1, plan)
					if !pt.Verified {
						t.Fatalf("%s groups=%d workers=%d: failed checksum-verified read-back", plan.Name, groups, workers)
					}
					got := fmt.Sprintf("%+v", pt)
					if ref == "" {
						ref = got
					} else if got != ref {
						t.Fatalf("%s groups=%d workers=%d run=%d diverged:\n  got: %s\n  ref: %s",
							plan.Name, groups, workers, run, got, ref)
					}
				}
			}
		}
	}
}
