// Benchmarks regenerating every table and figure of the paper's evaluation
// at bench scale (the full-scale tables come from cmd/paperrepro). Each
// benchmark reports the simulated metrics that the corresponding paper
// figure plots — virtual-time bandwidth (MBps), synchronization share, and
// so on — alongside the usual wall-clock ns/op of running the simulation.
//
// Run with: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/workload"
)

// fig1Procs is the Fig1 process-count sweep. The 128/256 points exercise
// the simulator well past the paper's bench scale, which is what the
// regression harness (TestEmitBenchJSON, `make bench`) tracks over time.
var fig1Procs = []int{16, 32, 64, 128, 256}

// BenchmarkFig1CollectiveWall measures the baseline protocol's
// synchronization share as process counts grow (paper Figure 1: 72% sync
// at 512 procs).
func BenchmarkFig1CollectiveWall(b *testing.B) {
	p := experiments.BenchPreset()
	for _, procs := range fig1Procs {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var share float64
			for i := 0; i < b.N; i++ {
				pts := p.CollectiveWall([]int{procs})
				share = pts[0].SyncShare()
			}
			b.ReportMetric(share*100, "sync%")
		})
	}
}

// BenchmarkFig2Breakdown reports the absolute time split (paper Figure 2).
func BenchmarkFig2Breakdown(b *testing.B) {
	p := experiments.BenchPreset()
	var bd mpiio.Breakdown
	for i := 0; i < b.N; i++ {
		pts := p.CollectiveWall([]int{64})
		bd = pts[0].Breakdown
	}
	b.ReportMetric(bd.Sync*1e3, "sync-ms")
	b.ReportMetric(bd.Exchange*1e3, "exch-ms")
	b.ReportMetric(bd.IO*1e3, "io-ms")
}

// BenchmarkFig6IOR measures IOR shared-file collective writes, baseline vs
// ParColl (paper Figure 6: up to 12.8x at 512 procs).
func BenchmarkFig6IOR(b *testing.B) {
	p := experiments.BenchPreset()
	for _, groups := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				pts := p.IORGroups([]int{64}, func(int) []int { return []int{groups} })
				bw = pts[0].BW
			}
			b.ReportMetric(bw/1e6, "MBps")
		})
	}
}

// BenchmarkFig7TileIOGroups sweeps subgroup counts for tile-IO write+read
// (paper Figure 7: best at 64 groups, drop when over-partitioned).
func BenchmarkFig7TileIOGroups(b *testing.B) {
	p := experiments.BenchPreset()
	for _, groups := range []int{1, 2, 8, 64} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			var pt experiments.GroupPoint
			for i := 0; i < b.N; i++ {
				pts := p.TileGroupSweep(64, []int{groups})
				pt = pts[0]
			}
			b.ReportMetric(pt.WriteBW/1e6, "writeMBps")
			b.ReportMetric(pt.ReadBW/1e6, "readMBps")
		})
	}
}

// BenchmarkFig8SyncReduction reports synchronization seconds against
// subgroup count (paper Figure 8).
func BenchmarkFig8SyncReduction(b *testing.B) {
	p := experiments.BenchPreset()
	for _, groups := range []int{1, 8} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			var sync float64
			for i := 0; i < b.N; i++ {
				pts := p.TileGroupSweep(64, []int{groups})
				sync = pts[0].Sync
			}
			b.ReportMetric(sync*1e3, "sync-ms")
		})
	}
}

// BenchmarkFig9TileIOScalability compares baseline and best-ParColl write
// bandwidth across process counts (paper Figure 9: 416% at 1024 procs).
func BenchmarkFig9TileIOScalability(b *testing.B) {
	p := experiments.BenchPreset()
	for _, procs := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var pt experiments.ScalePoint
			for i := 0; i < b.N; i++ {
				pts := p.TileScalability([]int{procs}, func(n int) []int {
					return []int{n / 8, n / 4}
				})
				pt = pts[0]
			}
			b.ReportMetric(pt.BaselineBW/1e6, "baseMBps")
			b.ReportMetric(pt.ParCollBW/1e6, "parcollMBps")
		})
	}
}

// BenchmarkFig10BTIO runs BT-IO full mode, which requires intermediate
// file views (paper Figure 10).
func BenchmarkFig10BTIO(b *testing.B) {
	p := experiments.BenchPreset()
	var pt experiments.BTPoint
	for i := 0; i < b.N; i++ {
		pts := p.BTIOScale([]int{16}, func(int) []int { return []int{4} })
		pt = pts[0]
	}
	b.ReportMetric(pt.BaselineBW/1e6, "baseMBps")
	b.ReportMetric(pt.ParCollBW/1e6, "parcollMBps")
}

// BenchmarkFig11FlashIO runs the Flash checkpoint series (paper Figure 11:
// ParColl-64 +38.5%; no-collective ~60 MB/s).
func BenchmarkFig11FlashIO(b *testing.B) {
	p := experiments.BenchPreset()
	var pts []experiments.FlashPoint
	for i := 0; i < b.N; i++ {
		pts = p.FlashSeries(32, 8, 8)
	}
	for _, pt := range pts {
		switch pt.Label {
		case "Cray (default aggs)":
			b.ReportMetric(pt.BW/1e6, "crayMBps")
		case "ParColl (default aggs)":
			b.ReportMetric(pt.BW/1e6, "parcollMBps")
		case "Cray w/o Coll":
			b.ReportMetric(pt.BW/1e6, "nocollMBps")
		}
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

// BenchmarkAblationGroupSize exposes the synchronization-vs-aggregation
// trade-off directly: tiny groups lose aggregation, huge groups pay the
// collective wall (paper Section 4's central tension).
func BenchmarkAblationGroupSize(b *testing.B) {
	p := experiments.BenchPreset()
	for _, groups := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				pts := p.TileGroupSweep(64, []int{groups})
				bw = pts[0].WriteBW
			}
			b.ReportMetric(bw/1e6, "MBps")
		})
	}
}

// BenchmarkAblationAggregatorPlacement compares the paper's distribution
// algorithm against naive per-group selection. Under cyclic rank-to-node
// mapping (the paper's Figure 5 case) a node's PEs land in different
// subgroups, so naive selection makes one node aggregate for two groups —
// the constraint-(b) violation the distribution algorithm exists to avoid.
func BenchmarkAblationAggregatorPlacement(b *testing.B) {
	p := experiments.BenchPreset()
	p.Cluster.Mapping = cluster.Cyclic
	run := func(b *testing.B, naive bool) float64 {
		opts := core.Options{
			NumGroups:        8,
			NaiveAggregators: naive,
			Hints:            mpiio.Hints{CBNodes: 8},
		}
		var bw float64
		for i := 0; i < b.N; i++ {
			env := experiments.EnvFor(p, p.TileScale, opts)
			mpi.Run(64, p.Cluster, p.Seed, func(r *mpi.Rank) {
				res := p.Tile.Write(r, env, "tile")
				if r.WorldRank() == 0 {
					bw = res.Bandwidth()
				}
			})
		}
		return bw
	}
	b.Run("distributed", func(b *testing.B) {
		b.ReportMetric(run(b, false)/1e6, "MBps")
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportMetric(run(b, true)/1e6, "MBps")
	})
}

// BenchmarkAblationIntermediateView runs BT-IO's scattered pattern
// (Section 4.1's Figure 4(c)) in the three intermediate-view
// configurations: disabled (falls back to one global group),
// strict-physical translation (on-disk format preserved, fragmented
// aggregator writes), and materialized (dense writes; the Figure 10
// configuration).
func BenchmarkAblationIntermediateView(b *testing.B) {
	p := experiments.BenchPreset()
	run := func(b *testing.B, opts core.Options) float64 {
		opts.NumGroups = 4
		var bw float64
		for i := 0; i < b.N; i++ {
			env := experiments.EnvFor(p, p.BTScale, opts)
			mpi.Run(16, p.Cluster, p.Seed, func(r *mpi.Rank) {
				res := p.BT.Write(r, env, "bt")
				if r.WorldRank() == 0 {
					bw = res.Bandwidth()
				}
			})
		}
		return bw
	}
	b.Run("disabled", func(b *testing.B) {
		b.ReportMetric(run(b, core.Options{DisableIntermediate: true})/1e6, "MBps")
	})
	b.Run("strict-physical", func(b *testing.B) {
		b.ReportMetric(run(b, core.Options{})/1e6, "MBps")
	})
	b.Run("materialized", func(b *testing.B) {
		b.ReportMetric(run(b, core.Options{MaterializeIntermediate: true})/1e6, "MBps")
	})
}

// BenchmarkAblationAlltoallAlgorithm swaps the request-dissemination
// alltoallv between the sparse-direct and pairwise algorithms, showing the
// paper's point that replacing collectives with point-to-point rounds does
// not remove the synchronization.
func BenchmarkAblationAlltoallAlgorithm(b *testing.B) {
	p := experiments.BenchPreset()
	run := func(b *testing.B, algo mpi.AlltoallvAlgo) float64 {
		opts := core.Options{Hints: mpiio.Hints{AlltoallvAlgo: algo}}
		var sync float64
		for i := 0; i < b.N; i++ {
			env := experiments.EnvFor(p, p.TileScale, opts)
			mpi.Run(64, p.Cluster, p.Seed, func(r *mpi.Rank) {
				res := p.Tile.Write(r, env, "tile")
				bd := workload.MeanBreakdown(mpi.WorldComm(r), res.Breakdown)
				if r.WorldRank() == 0 {
					sync = bd.Sync
				}
			})
		}
		return sync
	}
	b.Run("bruck-direct", func(b *testing.B) {
		b.ReportMetric(run(b, mpi.AlltoallvDirect)*1e3, "sync-ms")
	})
	b.Run("pairwise", func(b *testing.B) {
		b.ReportMetric(run(b, mpi.AlltoallvPairwise)*1e3, "sync-ms")
	})
}

// BenchmarkAblationLockModel compares the flat client-switch heuristic with
// the extent-lock (LDLM) model on the Flash independent-write path — the
// workload where lock ping-pong between a thousand uncoordinated writers
// is the paper's explanation for the "w/o Coll" collapse.
func BenchmarkAblationLockModel(b *testing.B) {
	p := experiments.BenchPreset()
	run := func(b *testing.B, extentLocks bool) float64 {
		lcfg := lustre.DefaultConfig()
		lcfg.CostScale = p.FlashScale
		lcfg.UseExtentLocks = extentLocks
		stripeSize := int64(4<<20) / int64(p.FlashScale)
		var bw float64
		for i := 0; i < b.N; i++ {
			env := workload.Env{
				FS:     lustre.NewFS(lcfg),
				Stripe: lustre.StripeInfo{Count: 64, Size: stripeSize},
				Opts:   core.Options{Hints: mpiio.Hints{CBBufferSize: stripeSize}},
			}
			mpi.Run(64, p.Cluster, p.Seed, func(r *mpi.Rank) {
				res := p.Flash.WriteCheckpointIndependent(r, env, "flash")
				if r.WorldRank() == 0 {
					bw = res.Bandwidth()
				}
			})
		}
		return bw
	}
	b.Run("switch-heuristic", func(b *testing.B) {
		b.ReportMetric(run(b, false)/1e6, "MBps")
	})
	b.Run("extent-locks", func(b *testing.B) {
		b.ReportMetric(run(b, true)/1e6, "MBps")
	})
}
