// Visualization: the paper's motivating workload — a parallel renderer
// where each process produces one tile of a dense 2D frame and all tiles
// are committed with a single collective write (the MPI-Tile-IO pattern).
// The example sweeps ParColl subgroup counts and prints how the balance
// between aggregation and synchronization moves, then verifies the frame.
//
// Run with: go run ./examples/visualization
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const nprocs = 32
	tile := workload.TileIO{TileX: 64, TileY: 64, Elem: 4} // 16 KiB tiles
	nx, ny := workload.Grid(nprocs)
	fmt.Printf("rendering a %dx%d grid of %dx%d-pixel tiles from %d ranks\n\n",
		nx, ny, tile.TileX, tile.TileY, nprocs)

	t := stats.NewTable("groups", "frame commit", "bandwidth", "sync share")
	for _, groups := range []int{1, 2, 4, 8, 16} {
		env := workload.Env{
			FS:     lustre.NewFS(lustre.DefaultConfig()),
			Stripe: lustre.StripeInfo{Count: 16, Size: 64 << 10},
			Opts: core.Options{
				NumGroups: groups,
				Hints:     mpiio.Hints{CBBufferSize: 64 << 10},
			},
		}
		var res workload.Result
		var share float64
		mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			out := tile.Write(r, env, "frame.raw")
			bd := workload.MeanBreakdown(mpi.WorldComm(r), out.Breakdown)
			if r.WorldRank() == 0 {
				res = out
				if tot := bd.Total(); tot > 0 {
					share = bd.Sync / tot
				}
			}
			if err := tile.VerifyTile(r, env, "frame.raw"); err != nil {
				log.Fatal(err)
			}
		})
		t.AddRow(groups, fmt.Sprintf("%.1f ms", res.Elapsed*1e3),
			stats.MBps(res.Bandwidth()), fmt.Sprintf("%.0f%%", share*100))
	}
	fmt.Println(t)
	fmt.Println("every frame verified byte-exact against the rendered tiles")
}
