// Validatetrace is the JSON-schema sanity check behind `make obs`: it reads
// one or more trace files produced by -trace-out and verifies each is a
// loadable Chrome/Perfetto trace_event document — a non-empty JSON array in
// which every event carries a name and a known phase code. It exits nonzero
// on the first invalid file, so the Makefile can gate on it.
//
// Run with: go run ./examples/validatetrace run.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	flag.Parse()
	if flag.NArg() == 0 {
		cli.Fatalf("usage: validatetrace <trace.json> [more...]")
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		if err := cli.ValidateTraceEvents(data); err != nil {
			cli.Fatalf("%s: %v", path, err)
		}
		fmt.Printf("%s: valid trace_event array (%d bytes)\n", path, len(data))
	}
}
