// Quickstart: open a file with ParColl, write collectively from eight
// simulated MPI ranks, and read it back.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
)

func main() {
	const (
		nprocs  = 8
		perRank = 1 << 20 // 1 MiB per rank
	)
	fs := lustre.NewFS(lustre.DefaultConfig())
	stripe := lustre.StripeInfo{Count: 8, Size: 1 << 20}

	// mpi.Run spawns the ranks on a simulated Cray-XT-like cluster and
	// returns the virtual wall time of the job.
	elapsed := mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
		comm := mpi.WorldComm(r)

		// ParColl with 4 subgroups; hints pass through to the underlying
		// two-phase protocol of each subgroup.
		f := core.Open(comm, fs, "quickstart.dat", stripe, core.Options{NumGroups: 4})

		// Each rank sees its own contiguous slab through a file view.
		me := r.WorldRank()
		f.SetView(datatype.View{
			Disp:     int64(me) * perRank,
			Filetype: datatype.Contig(perRank),
		})

		data := bytes.Repeat([]byte{byte('A' + me)}, perRank)
		f.WriteAtAll(0, data)

		comm.Barrier()
		back := f.ReadAtAll(0, perRank)
		if !bytes.Equal(back, data) {
			log.Fatalf("rank %d: read-back mismatch", me)
		}

		if me == 0 {
			plan := f.LastPlan()
			bd := f.Breakdown()
			fmt.Printf("partitioning: %v mode, %d groups, aggregators %v\n",
				plan.Mode, plan.NumGroups, plan.Aggregators)
			fmt.Printf("rank 0 time split: sync %.3fs exchange %.3fs io %.3fs\n",
				bd.Sync, bd.Exchange, bd.IO)
		}
	})
	fmt.Printf("wrote and re-read %d MiB across %d ranks in %.3f virtual seconds\n",
		nprocs*perRank>>20, nprocs, elapsed)
}
