// Autotune: the paper's future-work item — adaptive group-size selection —
// implemented as core.Options.AutoGroups. The example runs the same
// strided workload with the baseline protocol, a hand-tuned group count,
// and automatic selection, printing each configuration's close-time
// summary (the per-file report the paper's instrumentation emits).
//
// Run with: go run ./examples/autotune
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/stats"
)

func main() {
	const (
		nprocs = 64
		rows   = 64
		rowLen = 512
	)
	configs := []struct {
		label string
		opts  core.Options
	}{
		{"baseline (1 group)", core.Options{}},
		{"ParColl-4 (hand-tuned)", core.Options{NumGroups: 4}},
		{"ParColl auto", core.Options{AutoGroups: true}},
	}
	t := stats.NewTable("configuration", "groups", "mode", "commit", "sync", "io")
	for _, cfg := range configs {
		fs := lustre.NewFS(lustre.DefaultConfig())
		var elapsed float64
		var plan core.Plan
		var sync, io float64
		mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			comm := mpi.WorldComm(r)
			f := core.Open(comm, fs, "data.bin", lustre.StripeInfo{Count: 16, Size: 64 << 10}, cfg.opts)
			me := r.WorldRank()
			// Banded strided layout: each rank owns `rows` rows of
			// `rowLen` bytes inside its band (a pattern-(b) access).
			band := int64(nprocs/8) * rowLen // 8 ranks interleave per band
			_ = band
			ft := datatype.NewVector(rows, int64(rowLen), int64(rowLen*8))
			f.SetView(datatype.View{
				Disp:     int64(me/8)*int64(rows*rowLen*8) + int64(me%8)*int64(rowLen),
				Filetype: ft,
			})
			data := make([]byte, rows*rowLen)
			for i := range data {
				data[i] = byte(me + i)
			}
			comm.Barrier()
			t0 := comm.MaxFinishTime()
			f.WriteAtAll(0, data)
			end := comm.MaxFinishTime()
			bd := f.Close()
			if me == 0 {
				elapsed = end - t0
				plan = f.LastPlan()
				sync, io = bd.Sync, bd.IO
			}
		})
		t.AddRow(cfg.label, plan.NumGroups, fmt.Sprint(plan.Mode),
			fmt.Sprintf("%.1f ms", elapsed*1e3),
			fmt.Sprintf("%.1f ms", sync*1e3),
			fmt.Sprintf("%.1f ms", io*1e3))
	}
	fmt.Println("adaptive group selection (64 ranks, banded strided writes)")
	fmt.Println()
	fmt.Println(t)
}
