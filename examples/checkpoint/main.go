// Checkpoint: a Flash-style application checkpoint — every rank owns a set
// of AMR blocks and periodically dumps all solution variables through an
// HDF5-like container over collective I/O. The example writes checkpoints
// with and without ParColl and with an explicit aggregator hint, then
// validates the container.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lustre"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const nprocs = 64
	flash := workload.FlashIO{NxB: 8, NyB: 8, NzB: 8, NBlocks: 4, NVars: 8, Elem: 8}
	fmt.Printf("checkpointing %s from %d ranks (%d vars, %d blocks/rank)\n\n",
		stats.Bytes(flash.CheckpointBytes(nprocs)), nprocs, flash.NVars, flash.NBlocks)

	configs := []struct {
		label string
		opts  core.Options
	}{
		{"two-phase baseline", core.Options{}},
		{"ParColl, 8 groups", core.Options{NumGroups: 8}},
		{"ParColl, 8 groups, 16 aggregators", core.Options{
			NumGroups: 8,
			Hints:     mpiio.Hints{CBNodes: 16},
		}},
	}
	t := stats.NewTable("configuration", "checkpoint time", "bandwidth")
	for _, cfg := range configs {
		env := workload.Env{
			FS:     lustre.NewFS(lustre.DefaultConfig()),
			Stripe: lustre.StripeInfo{Count: 32, Size: 256 << 10},
			Opts:   cfg.opts,
		}
		var res workload.Result
		mpi.Run(nprocs, cluster.DefaultConfig(), 1, func(r *mpi.Rank) {
			out := flash.WriteCheckpoint(r, env, "chk0001")
			if r.WorldRank() == 0 {
				res = out
			}
			mpi.WorldComm(r).Barrier()
			if err := flash.VerifyCheckpoint(r, env, "chk0001"); err != nil {
				log.Fatal(err)
			}
		})
		t.AddRow(cfg.label, fmt.Sprintf("%.1f ms", res.Elapsed*1e3), stats.MBps(res.Bandwidth()))
	}
	fmt.Println(t)
	fmt.Println("all checkpoints verified (header parse + per-rank data)")
}
