// Observability acceptance tests. The obs layer is observe-only: it reads
// virtual clocks and counters but never advances time, draws randomness, or
// reorders events — so a fully instrumented run must be bit-identical in
// virtual time to a bare run of the same configuration. These tests pin that
// invariant across the whole fault-scenario catalog, pin the determinism of
// the Perfetto export (same run -> same bytes), and sanity-check the
// critical-path report against the run it came from.
package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// TestInstrumentedRunsMatchBare runs every catalog scenario at baseline and
// ParColl geometry twice — once bare, once with the trace recorder and
// metrics registry threaded through every layer — and asserts the elapsed
// virtual times are bit-identical. Any instrumentation that consumed an RNG
// draw, advanced a clock, or perturbed scheduling order would shift these.
func TestInstrumentedRunsMatchBare(t *testing.T) {
	p := experiments.BenchPreset()
	for _, name := range fault.Names() {
		plan, err := fault.Scenario(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, groups := range []int{1, scenarioGroups} {
			bare := p.TileUnderFault(scenarioProcs, groups, plan)
			obs := experiments.ObservedTileWrite(p, scenarioProcs, groups, plan)
			if obs.Result.Elapsed != bare.Elapsed {
				t.Errorf("%s/groups=%d: instrumented elapsed %x != bare %x",
					name, groups, obs.Result.Elapsed, bare.Elapsed)
			}
			if obs.Result.VirtBytes <= 0 {
				t.Errorf("%s/groups=%d: instrumented run moved no bytes", name, groups)
			}
		}
	}
}

// TestObservedRunDeterminism pins run-to-run identity of the full observed
// bundle: two instrumented runs of the same configuration must agree on the
// metrics snapshot and produce byte-identical Perfetto exports.
func TestObservedRunDeterminism(t *testing.T) {
	p := experiments.BenchPreset()
	plan, err := fault.Scenario(fault.OneStraggler)
	if err != nil {
		t.Fatal(err)
	}
	a := experiments.ObservedTileWrite(p, scenarioProcs, scenarioGroups, plan)
	b := experiments.ObservedTileWrite(p, scenarioProcs, scenarioGroups, plan)
	if !a.Snapshot.Equal(b.Snapshot) {
		t.Errorf("metrics snapshots differ between identical runs:\n--- first\n%s\n--- second\n%s",
			a.Snapshot.String(), b.Snapshot.String())
	}
	ja, err := a.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("Perfetto exports differ between identical runs: %d vs %d bytes", len(ja), len(jb))
	}
	if len(ja) == 0 {
		t.Error("Perfetto export is empty")
	}
}

// TestObservedMetricsPopulated asserts the instruments the registry promises
// actually fire during a tile write: MPI collective counters, lustre service
// histograms, mpiio round-phase histograms, and the engine's scheduler
// counters must all be present and nonzero in the snapshot.
func TestObservedMetricsPopulated(t *testing.T) {
	p := experiments.BenchPreset()
	o := experiments.ObservedTileWrite(p, scenarioProcs, scenarioGroups, nil)
	snap := o.Snapshot
	counters := make(map[string]uint64)
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for _, name := range []string{
		"mpi.coll.barrier.calls",
		"mpi.coll.allreduce.calls",
		"sim.resumes",
		"sim.sends",
		"lustre.ost.requests",
		"lustre.ost.bytes",
	} {
		if counters[name] == 0 {
			t.Errorf("counter %q absent or zero in snapshot", name)
		}
	}
	hists := make(map[string]uint64)
	for _, h := range snap.Histograms {
		hists[h.Name] = h.Count
	}
	for _, name := range []string{
		"lustre.ost.service.secs",
		"mpiio.round.sync.secs",
		"mpiio.round.exchange.secs",
		"mpiio.round.io.secs",
	} {
		if hists[name] == 0 {
			t.Errorf("histogram %q absent or empty in snapshot", name)
		}
	}
}

// TestCriticalPathConsistency sanity-checks the critical-path report of an
// instrumented run: the path must span the run's full recorded interval,
// its steps must be contiguous in time, and the bounding phase must be one
// of the recorded span kinds.
func TestCriticalPathConsistency(t *testing.T) {
	p := experiments.BenchPreset()
	plan, err := fault.Scenario(fault.OneStraggler)
	if err != nil {
		t.Fatal(err)
	}
	o := experiments.ObservedTileWrite(p, scenarioProcs, scenarioGroups, plan)
	rep := o.Path
	if len(rep.Steps) == 0 {
		t.Fatal("critical path has no steps")
	}
	if rep.Span <= 0 {
		t.Fatalf("critical path span %g must be positive", rep.Span)
	}
	var sum float64
	for i, s := range rep.Steps {
		if s.End < s.Start {
			t.Errorf("step %d runs backwards: [%g, %g]", i, s.Start, s.End)
		}
		if i > 0 && rep.Steps[i-1].End != s.Start {
			t.Errorf("steps %d-%d not contiguous: %g != %g", i-1, i, rep.Steps[i-1].End, s.Start)
		}
		sum += s.End - s.Start
	}
	if diff := sum - rep.Span; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("step durations sum to %g, span is %g", sum, rep.Span)
	}
	if rep.BoundingKind == "" || rep.BoundingRank < 0 {
		t.Errorf("bounding contributor not identified: rank=%d kind=%q", rep.BoundingRank, rep.BoundingKind)
	}
	// A one-straggler run is bounded by waiting on the slow rank: the top
	// contributor must hold a large share of the span.
	if len(rep.Contribs) == 0 {
		t.Fatal("no contributors")
	}
	if top := rep.Contribs[0]; top.Seconds <= 0 || top.Seconds > rep.Span {
		t.Errorf("top contributor %+v out of range (span %g)", top, rep.Span)
	}
}
