// The large-scale benchmark tier: TestEmitBenchLargeJSON pushes the Fig1
// collective-wall run to 1024 and 4096 procs (16384 as an opt-in stretch)
// under the partitioned parallel engine (DESIGN.md §12) and writes the same
// machine-readable report as the small tier (BENCH_6.json; `make bench-large`
// drives it). It also times the 256-proc point under both engines and records
// the wall-clock speedup — the strong-scaling number EXPERIMENTS.md tracks —
// after asserting the two engines produced bit-identical virtual time.
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/sim"
)

// benchLargeProcs is the large-tier Fig1 sweep. The small tier
// (benchjson_test.go) stops at 256; these points are why the parallel engine
// exists, and they only run under `make bench-large` so plain `go test`
// stays fast.
var benchLargeProcs = []int{1024, 4096}

// timeOnce measures one CollectiveWallStats run at the given worker count
// with testing.Benchmark (b.N=1 for multi-second runs, averaged otherwise).
func timeOnce(p experiments.Preset, procs, workers int) (float64, experiments.WallPoint, sim.Stats) {
	p.Workers = workers
	var pt experiments.WallPoint
	var st sim.Stats
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pt, st = p.CollectiveWallStats(procs)
		}
	})
	return float64(res.T.Nanoseconds()) / float64(res.N), pt, st
}

// TestEmitBenchLargeJSON writes the large-tier report to the path named by
// the BENCH_LARGE_JSON environment variable (skipped when unset). Set
// BENCH_LARGE_STRETCH=1 to add the 16384-proc stretch point.
func TestEmitBenchLargeJSON(t *testing.T) {
	path := os.Getenv("BENCH_LARGE_JSON")
	if path == "" {
		t.Skip("set BENCH_LARGE_JSON=<path> to emit the large-tier benchmark report")
	}
	p := experiments.BenchPreset()
	rep := perf.NewBenchReport()

	// Strong-scaling probe: the 256-proc point under the serial engine and
	// under >=4 workers. The virtual-time results must be bit-identical —
	// only the wall clock may move — so the speedup number is meaningful.
	serialNs, spt, sst := timeOnce(p, 256, 1)
	parWorkers := runtime.GOMAXPROCS(0)
	if parWorkers < 4 {
		parWorkers = 4
	}
	parNs, ppt, pst := timeOnce(p, 256, parWorkers)
	if ppt.Breakdown != spt.Breakdown || pst != sst {
		t.Fatalf("workers=%d diverges from serial at 256 procs:\n  serial:   %+v %+v\n  parallel: %+v %+v",
			parWorkers, spt.Breakdown, sst, ppt.Breakdown, pst)
	}
	speedup := serialNs / parNs
	rep.Add(perf.BenchPoint{
		Name:    fmt.Sprintf("Fig1Speedup/procs=256/workers=%d", parWorkers),
		NsPerOp: parNs,
		Metrics: map[string]float64{
			"serial_ns_per_op": serialNs,
			"speedup":          speedup,
			"workers":          float64(parWorkers),
			"gomaxprocs":       float64(runtime.GOMAXPROCS(0)),
		},
	})
	t.Logf("Fig1/procs=256: serial %.0f ns/op, %d workers %.0f ns/op — %.2fx (GOMAXPROCS=%d)",
		serialNs, parWorkers, parNs, speedup, runtime.GOMAXPROCS(0))

	procs := benchLargeProcs
	if os.Getenv("BENCH_LARGE_STRETCH") != "" {
		procs = append(procs, 16384)
	}
	workers := runtime.GOMAXPROCS(0)
	p.Workers = workers
	for _, n := range procs {
		var pt experiments.WallPoint
		var st sim.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt, st = p.CollectiveWallStats(n)
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		point := perf.BenchPoint{
			Name:        fmt.Sprintf("Fig1CollectiveWall/procs=%d", n),
			NsPerOp:     nsPerOp,
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Metrics: map[string]float64{
				"sync_share":         pt.SyncShare(),
				"sim_events":         float64(st.Events()),
				"sim_events_per_sec": float64(st.Events()) / (nsPerOp / 1e9),
				"workers":            float64(workers),
			},
		}
		rep.Add(point)
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, %.2g events/sec, sync=%.1f%% (workers=%d)",
			point.Name, point.NsPerOp, point.AllocsPerOp,
			point.Metrics["sim_events_per_sec"], 100*point.Metrics["sync_share"], workers)
	}
	if err := rep.Write(path); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}
