// Command flashio mirrors the Flash I/O checkpoint experiment of the
// paper's Section 5.4: every process writes its AMR blocks for each of 24
// unknowns through an HDF5-like container over collective MPI-IO. It
// compares the default and 64-aggregator configurations, baseline vs
// ParColl, plus the no-collective-I/O reference. Reproduces Figure 11.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/stats"
)

func main() {
	groups := flag.Int("groups", 64, "ParColl subgroup count")
	aggs := flag.Int("aggs", 64, "aggregator count for the hinted series")
	verify := flag.Bool("verify", false, "verify checkpoint contents of a ParColl run")
	c := cli.Register(256)
	c.RegisterScenario("")
	flag.Parse()
	c.ResolveSpec(job.WorkloadFlashIO)

	p := experiments.PaperPreset()
	c.Apply(&p)
	points := p.FlashSeries(c.Procs, *groups, *aggs)
	if c.JSON {
		c.EmitJSON("flash-series", points)
	} else {
		fmt.Printf("Flash I/O checkpoint: %d procs, %d vars, %s virtual per proc\n\n",
			c.Procs, p.Flash.NVars,
			stats.Bytes(p.Flash.PerProcBytes()*int64(p.Flash.NVars)*int64(p.FlashScale)))
		t := stats.NewTable("series", "bandwidth")
		for _, pt := range points {
			t.AddRow(pt.Label, stats.MBps(pt.BW))
		}
		fmt.Println(t)
	}
	if *verify {
		if err := experiments.VerifyFlash(p, min(c.Procs, 64), core.Options{NumGroups: *groups}); err != nil {
			cli.Fatalf("VERIFY FAILED: %v", err)
		}
		fmt.Println("verify: checkpoint byte-exact")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
