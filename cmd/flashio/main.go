// Command flashio mirrors the Flash I/O checkpoint experiment of the
// paper's Section 5.4: every process writes its AMR blocks for each of 24
// unknowns through an HDF5-like container over collective MPI-IO. It
// compares the default and 64-aggregator configurations, baseline vs
// ParColl, plus the no-collective-I/O reference. Reproduces Figure 11.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	procs := flag.Int("procs", 256, "number of simulated processes")
	groups := flag.Int("groups", 64, "ParColl subgroup count")
	aggs := flag.Int("aggs", 64, "aggregator count for the hinted series")
	verify := flag.Bool("verify", false, "verify checkpoint contents of a ParColl run")
	flag.Parse()

	p := experiments.PaperPreset()
	fmt.Printf("Flash I/O checkpoint: %d procs, %d vars, %s virtual per proc\n\n",
		*procs, p.Flash.NVars,
		stats.Bytes(p.Flash.PerProcBytes()*int64(p.Flash.NVars)*int64(p.FlashScale)))
	points := p.FlashSeries(*procs, *groups, *aggs)
	t := stats.NewTable("series", "bandwidth")
	for _, pt := range points {
		t.AddRow(pt.Label, stats.MBps(pt.BW))
	}
	fmt.Println(t)
	if *verify {
		if err := experiments.VerifyFlash(p, min(*procs, 64), core.Options{NumGroups: *groups}); err != nil {
			fmt.Fprintln(os.Stderr, "VERIFY FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("verify: checkpoint byte-exact")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
