// Command paperrepro regenerates every table and figure of the ParColl
// paper's evaluation and prints the measured series next to the paper's
// qualitative expectations.
//
// Usage:
//
//	paperrepro [-fig all|1|2|6|7|8|9|10|11] [-preset paper|bench] [-procs N]
//
// -procs caps the simulated process counts of every figure.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/viz"
)

var c *cli.Common

// timings controls the "[figN took X.Xs]" lines. `make paperrepro` turns it
// off so the checked-in transcript (paperrepro_output.txt) is a pure function
// of the simulation and regenerating it can't produce wall-clock noise diffs.
var timings bool

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: all,1,2,6,7,8,9,10,11")
	flag.BoolVar(&timings, "timings", true,
		"print wall-clock duration after each figure (disable for a deterministic transcript)")
	presetName := flag.String("preset", "paper", "parameter preset: paper or bench")
	osts := flag.Int("osts", 0, "override number of OSTs")
	ostBW := flag.Float64("ostbw", 0, "override per-OST bandwidth, bytes/s")
	latency := flag.Float64("latency", 0, "override network latency, seconds")
	jitter := flag.Float64("jitter", -1, "override OST service jitter fraction")
	tailProb := flag.Float64("tailprob", -1, "override OST heavy-tail probability")
	c = cli.Register(512)
	c.RegisterScenario("")
	flag.Parse()
	c.ResolveSpec("")

	var p experiments.Preset
	switch *presetName {
	case "paper":
		p = experiments.PaperPreset()
	case "bench":
		p = experiments.BenchPreset()
	default:
		cli.Fatalf("unknown preset %q", *presetName)
	}
	c.Apply(&p)
	if *osts > 0 {
		p.Lustre.NumOSTs = *osts
	}
	if *ostBW > 0 {
		p.Lustre.OSTBandwidth = *ostBW
	}
	if *latency > 0 {
		p.Cluster.Latency = *latency
	}
	if *jitter >= 0 {
		p.Lustre.Jitter = *jitter
	}
	if *tailProb >= 0 {
		p.Lustre.TailProb = *tailProb
	}
	if !c.JSON {
		fmt.Printf("ParColl reproduction — preset %s, up to %d procs\n\n", p.Name, c.Procs)
	}

	want := func(f string) bool { return *fig == "all" || *fig == f }
	if want("1") || want("2") {
		fig12(p, c.Procs)
	}
	if want("6") {
		fig6(p, c.Procs)
	}
	if want("7") || want("8") {
		fig78(p, c.Procs)
	}
	if want("9") {
		fig9(p, c.Procs)
	}
	if want("10") {
		fig10(p, c.Procs)
	}
	if want("11") {
		fig11(p, c.Procs)
	}
}

func capped(procs []int, maxProcs int) []int {
	var out []int
	for _, p := range procs {
		if p <= maxProcs {
			out = append(out, p)
		}
	}
	return out
}

func timed(name string, fn func()) {
	t0 := time.Now()
	fn()
	if !c.JSON && timings {
		fmt.Printf("[%s took %.1fs]\n\n", name, time.Since(t0).Seconds())
	}
}

func fig12(p experiments.Preset, maxProcs int) {
	timed("fig1+2", func() {
		procs := capped([]int{16, 32, 64, 128, 256, 512, 1024}, maxProcs)
		points := p.CollectiveWall(procs)
		if c.JSON {
			c.EmitJSON("fig1+2-collective-wall", points)
			return
		}
		t := stats.NewTable("procs", "sync(s)", "exchange(s)", "io(s)", "sync-share")
		for _, pt := range points {
			t.AddRow(pt.Procs, pt.Breakdown.Sync, pt.Breakdown.Exchange, pt.Breakdown.IO,
				fmt.Sprintf("%.0f%%", pt.SyncShare()*100))
		}
		fmt.Println("Figure 1+2 — the collective wall (MPI-Tile-IO baseline breakdown)")
		fmt.Println("paper: sync share grows with procs, dominating (72%) by 512 procs")
		fmt.Println(t)
		var xs, sync, io []float64
		for _, pt := range points {
			xs = append(xs, float64(pt.Procs))
			sync = append(sync, pt.Breakdown.Sync)
			io = append(io, pt.Breakdown.IO)
		}
		fmt.Println(viz.TrendChart([]viz.Series{
			{Name: "sync seconds", X: xs, Y: sync, Marker: 's'},
			{Name: "io seconds", X: xs, Y: io, Marker: 'i'},
		}, 10))
	})
}

func groupsUpTo(nprocs, minGroupSize int) []int {
	var out []int
	for g := 1; g*minGroupSize <= nprocs; g *= 2 {
		out = append(out, g)
	}
	return out
}

func fig6(p experiments.Preset, maxProcs int) {
	timed("fig6", func() {
		procs := capped([]int{128, 512}, maxProcs)
		points := p.IORGroups(procs, func(n int) []int { return groupsUpTo(n, 8) })
		if c.JSON {
			c.EmitJSON("fig6-ior", points)
			return
		}
		t := stats.NewTable("procs", "groups", "bandwidth")
		for _, pt := range points {
			label := fmt.Sprintf("ParColl-%d", pt.Groups)
			if pt.Groups == 1 {
				label = "Cray(base)"
			}
			t.AddRow(pt.Procs, label, stats.MBps(pt.BW))
		}
		fmt.Println("Figure 6 — IOR collective write (512 MB/proc in 4 MB units)")
		fmt.Println("paper: ParColl reaches 5301 MB/s vs 380 MB/s baseline at 512 procs (12.8x)")
		fmt.Println(t)
		var bars []viz.Bar
		for _, pt := range points {
			if pt.Procs != procs[len(procs)-1] {
				continue
			}
			label := fmt.Sprintf("%dp ParColl-%d", pt.Procs, pt.Groups)
			if pt.Groups == 1 {
				label = fmt.Sprintf("%dp baseline", pt.Procs)
			}
			bars = append(bars, viz.Bar{Label: label, Value: pt.BW / 1e6})
		}
		fmt.Println(viz.BarChart(bars, 46, "%.0f MB/s"))
	})
}

func fig78(p experiments.Preset, maxProcs int) {
	timed("fig7+8", func() {
		n := 512
		if n > maxProcs {
			n = maxProcs
		}
		groups := groupsUpTo(n, 1)
		points := p.TileGroupSweep(n, groups)
		if c.JSON {
			c.EmitJSON("fig7+8-tile-groups", points)
			return
		}
		t := stats.NewTable("groups", "write", "read", "sync(s)", "sync-share")
		for _, pt := range points {
			t.AddRow(pt.Groups, stats.MBps(pt.WriteBW), stats.MBps(pt.ReadBW),
				pt.Sync, fmt.Sprintf("%.0f%%", pt.SyncShare*100))
		}
		fmt.Printf("Figure 7+8 — MPI-Tile-IO vs subgroup count (%d procs)\n", n)
		fmt.Println("paper: best at 64 groups (+210% write, +180% read); drops when over-partitioned;")
		fmt.Println("       sync cost falls with groups (Fig 8)")
		fmt.Println(t)
		var bars []viz.Bar
		for _, pt := range points {
			bars = append(bars, viz.Bar{Label: fmt.Sprintf("%d groups", pt.Groups), Value: pt.WriteBW / 1e6})
		}
		fmt.Println(viz.BarChart(bars, 46, "%.0f MB/s write"))
	})
}

func fig9(p experiments.Preset, maxProcs int) {
	timed("fig9", func() {
		procs := capped([]int{64, 128, 256, 512, 1024}, maxProcs)
		points := p.TileScalability(procs, func(n int) []int {
			var gs []int
			for _, g := range []int{8, 16, 32, 64, 128} {
				if g*4 <= n {
					gs = append(gs, g)
				}
			}
			return gs
		})
		if c.JSON {
			c.EmitJSON("fig9-tile-scalability", points)
			return
		}
		t := stats.NewTable("procs", "Cray(base)", "ParColl(best)", "best-groups", "speedup")
		for _, pt := range points {
			t.AddRow(pt.Procs, stats.MBps(pt.BaselineBW), stats.MBps(pt.ParCollBW),
				pt.BestGroups, fmt.Sprintf("%.1fx", pt.ParCollBW/pt.BaselineBW))
		}
		fmt.Println("Figure 9 — MPI-Tile-IO write scalability")
		fmt.Println("paper: ParColl 11.4 GB/s vs 2.7 GB/s at 1024 procs (416%); gap widens with procs")
		fmt.Println(t)
		var xs, base, pc []float64
		for _, pt := range points {
			xs = append(xs, float64(pt.Procs))
			base = append(base, pt.BaselineBW/1e6)
			pc = append(pc, pt.ParCollBW/1e6)
		}
		fmt.Println(viz.TrendChart([]viz.Series{
			{Name: "baseline MB/s", X: xs, Y: base, Marker: 'c'},
			{Name: "ParColl MB/s", X: xs, Y: pc, Marker: 'p'},
		}, 10))
	})
}

func fig10(p experiments.Preset, maxProcs int) {
	timed("fig10", func() {
		procs := capped([]int{16, 64, 144, 256, 324, 576}, maxProcs)
		// BT-IO needs square process counts whose root divides N.
		var ok []int
		for _, n := range procs {
			k := 1
			for k*k < n {
				k++
			}
			if k*k == n && p.BT.N%int64(k) == 0 {
				ok = append(ok, n)
			}
		}
		points := p.BTIOScale(ok, func(n int) []int {
			var gs []int
			for _, g := range []int{4, 8, 16, 32, 64} {
				if g*4 <= n {
					gs = append(gs, g)
				}
			}
			return gs
		})
		if c.JSON {
			c.EmitJSON("fig10-btio", points)
			return
		}
		t := stats.NewTable("procs", "Cray(base)", "ParColl(best)", "best-groups", "speedup")
		for _, pt := range points {
			t.AddRow(pt.Procs, stats.MBps(pt.BaselineBW), stats.MBps(pt.ParCollBW),
				pt.BestGroups, fmt.Sprintf("%.1fx", pt.ParCollBW/pt.BaselineBW))
		}
		fmt.Println("Figure 10 — NAS BT-IO full mode (intermediate file views)")
		fmt.Println("paper: ParColl wins at every count; best absolute I/O at 576 procs")
		fmt.Println(t)
		var xs, base, pc []float64
		for _, pt := range points {
			xs = append(xs, float64(pt.Procs))
			base = append(base, pt.BaselineBW/1e6)
			pc = append(pc, pt.ParCollBW/1e6)
		}
		fmt.Println(viz.TrendChart([]viz.Series{
			{Name: "baseline MB/s", X: xs, Y: base, Marker: 'c'},
			{Name: "ParColl MB/s", X: xs, Y: pc, Marker: 'p'},
		}, 10))
	})
}

func fig11(p experiments.Preset, maxProcs int) {
	timed("fig11", func() {
		n := 1024
		if n > maxProcs {
			n = maxProcs
		}
		points := p.FlashSeries(n, 64, 64)
		if c.JSON {
			c.EmitJSON("fig11-flash", points)
			return
		}
		t := stats.NewTable("series", "bandwidth")
		for _, pt := range points {
			t.AddRow(pt.Label, stats.MBps(pt.BW))
		}
		fmt.Printf("Figure 11 — Flash I/O checkpoint (%d procs)\n", n)
		fmt.Println("paper: ParColl-64 +38.5% over Cray default; w/o collective I/O ~60 MB/s")
		fmt.Println(t)
		var bars []viz.Bar
		for _, pt := range points {
			bars = append(bars, viz.Bar{Label: pt.Label, Value: pt.BW / 1e6})
		}
		fmt.Println(viz.BarChart(bars, 46, "%.0f MB/s"))
	})
}
