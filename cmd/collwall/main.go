// Command collwall dissects collective I/O the way the paper's Section 2
// does: it profiles the MPI-Tile-IO workload under the unpartitioned
// two-phase protocol across process counts and prints the time breakdown
// into synchronization, point-to-point exchange, and file I/O — the data
// behind Figures 1 and 2 (the "collective wall").
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	maxProcs := flag.Int("maxprocs", 512, "largest process count to profile")
	minProcs := flag.Int("minprocs", 16, "smallest process count to profile")
	gantt := flag.Int("gantt", 0, "render a per-rank timeline of one run with this many ranks (s=sync e=exchange i=io)")
	flag.Parse()

	if *gantt > 0 {
		renderGantt(*gantt)
		return
	}

	p := experiments.PaperPreset()
	var procs []int
	for n := *minProcs; n <= *maxProcs; n *= 2 {
		procs = append(procs, n)
	}
	points := p.CollectiveWall(procs)

	t := stats.NewTable("procs", "sync(s)", "exchange(s)", "io(s)", "total(s)", "sync-share")
	for _, pt := range points {
		t.AddRow(pt.Procs, pt.Breakdown.Sync, pt.Breakdown.Exchange, pt.Breakdown.IO,
			pt.Breakdown.Total(), fmt.Sprintf("%.0f%%", pt.SyncShare()*100))
	}
	fmt.Println("Collective wall profile (MPI-Tile-IO, baseline extended two-phase)")
	fmt.Println(t)
	last := points[len(points)-1]
	if last.SyncShare() > 0.5 {
		fmt.Printf("At %d processes synchronization consumes %.0f%% of collective I/O time —\n",
			last.Procs, last.SyncShare()*100)
		fmt.Println("the collective wall the paper identifies (72% at 512 procs on Jaguar).")
	}
}

// renderGantt traces one baseline tile-IO collective write and draws the
// per-rank timeline, making the interleaved sync/exchange/io rounds — and
// the waiting that builds the wall — directly visible.
func renderGantt(nprocs int) {
	p := experiments.PaperPreset()
	rec := trace.New()
	env := experiments.EnvFor(p, p.TileScale, core.Options{})
	mpi.Run(nprocs, p.Cluster, p.Seed, func(r *mpi.Rank) {
		r.SetTracer(rec)
		p.Tile.Write(r, env, "tile")
	})
	fmt.Printf("one collective tile write, %d ranks (s=sync e=exchange i=io o=other)\n\n", nprocs)
	fmt.Print(rec.Gantt(100))
	fmt.Println()
	t := stats.NewTable("class", "total seconds (all ranks)")
	for _, k := range []string{"sync", "exchange", "io", "other"} {
		t.AddRow(k, rec.ByKind()[k])
	}
	fmt.Println(t)
}
