// Command collwall dissects collective I/O the way the paper's Section 2
// does: it profiles the MPI-Tile-IO workload under the unpartitioned
// two-phase protocol across process counts and prints the time breakdown
// into synchronization, point-to-point exchange, and file I/O — the data
// behind Figures 1 and 2 (the "collective wall").
//
// Modes are subcommands:
//
//	collwall wall       profile the collective wall across process counts (default)
//	collwall sweep      straggler-severity sweep, ext2ph vs ParColl
//	collwall overlap    compute/IO-ratio sweep, blocking vs split collectives
//	collwall failures   fail-stop recovery comparison (-scenario names the plan, default all)
//	collwall scenarios  baseline vs ParColl under fault scenarios (-scenario, default all)
//	collwall gantt      per-rank timeline of one run at -procs ranks
//
// The pre-subcommand spellings (-sweep, -overlap, -failures NAME, -gantt N,
// bare -scenario NAME) still work as deprecated aliases for one release and
// print a warning naming the subcommand to use instead.
//
// Observability: every mode accepts -trace-out and -metrics. Both run one
// instrumented tile write at the mode's -procs/-groups (under -scenario's
// plan when one is named), export it as a Perfetto/Chrome trace_event JSON
// file, and report the metrics snapshot plus the critical-path analysis —
// which rank and phase bounded completion.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/trace"
)

// modes lists the subcommands in help order; "wall" is the default.
var modes = []string{"wall", "sweep", "overlap", "failures", "scenarios", "gantt"}

// dispatch splits the argument list into a subcommand and the remaining
// flag arguments. An argument list that does not start with a known
// subcommand comes back with mode "" — the legacy flag-driven surface.
func dispatch(args []string) (mode string, rest []string) {
	if len(args) > 0 {
		for _, m := range modes {
			if args[0] == m {
				return m, args[1:]
			}
		}
	}
	return "", args
}

// legacyMode maps the pre-subcommand flag surface onto a mode name and the
// flag that selected it ("" when the plain default ran — no deprecation to
// warn about). Precedence matches the historical if-chain: gantt, overlap,
// sweep, failures, scenario.
func legacyMode(gantt int, failures string, sweep, overlap bool, scenario string) (mode, flagName string) {
	switch {
	case gantt > 0:
		return "gantt", "-gantt"
	case overlap:
		return "overlap", "-overlap"
	case sweep:
		return "sweep", "-sweep"
	case failures != "":
		return "failures", "-failures"
	case scenario != "":
		return "scenarios", "-scenario"
	}
	return "wall", ""
}

func main() {
	mode, rest := dispatch(os.Args[1:])
	maxProcs := flag.Int("maxprocs", 512, "largest process count to profile")
	minProcs := flag.Int("minprocs", 16, "smallest process count to profile")
	gantt := flag.Int("gantt", 0, "deprecated alias for `collwall gantt` with this many ranks")
	failures := flag.String("failures", "", "deprecated alias for `collwall failures -scenario NAME`")
	sweep := flag.Bool("sweep", false, "deprecated alias for `collwall sweep`")
	overlap := flag.Bool("overlap", false, "deprecated alias for `collwall overlap`")
	groups := flag.Int("groups", 8, "ParColl subgroup count for the sweep, overlap, failures and scenarios modes")
	severities := flag.String("severities", "0,1,2,4,8", "comma-separated severity levels for the sweep mode")
	ratios := flag.String("ratios", "0,0.25,0.5,1,2", "comma-separated compute/IO ratios for the overlap mode")
	steps := flag.Int("steps", 6, "collective dumps per run for the overlap mode")
	c := cli.Register(64)
	c.RegisterScenario("fault scenario for the failures and scenarios modes ('all' runs the catalog: " + strings.Join(fault.Names(), ", ") + ")")
	c.RegisterObs()
	flag.CommandLine.Parse(rest)
	c.ResolveSpec("")

	ganttN := c.Procs
	scenName := c.Scenario
	if mode == "" {
		var legacyFlag string
		mode, legacyFlag = legacyMode(*gantt, *failures, *sweep, *overlap, c.Scenario)
		if legacyFlag != "" {
			fmt.Fprintf(os.Stderr, "warning: selecting the mode with %s is deprecated; use `collwall %s` (alias kept for one release)\n", legacyFlag, mode)
		}
		if *gantt > 0 {
			ganttN = *gantt
		}
		if *failures != "" {
			scenName = *failures
		}
	}
	if scenName == "" {
		scenName = "all"
	}

	// The observability surface rides along with whatever mode ran.
	defer maybeObserve(c, *groups)

	switch mode {
	case "gantt":
		renderGantt(c, ganttN)
	case "overlap":
		runOverlap(c, *groups, *steps, cli.ParseFloats("ratio", *ratios))
	case "sweep":
		runSweep(c, *groups, cli.ParseFloats("severity", *severities))
	case "failures":
		runFailures(c, scenName, *groups)
	case "scenarios":
		runScenarios(c, scenName, *groups)
	default:
		runWall(c, *minProcs, *maxProcs)
	}
}

// runWall is the default mode: the collective-wall profile across process
// counts (Figures 1 and 2).
func runWall(c *cli.Common, minProcs, maxProcs int) {
	p := experiments.PaperPreset()
	c.ApplyBase(&p)
	var procs []int
	for n := minProcs; n <= maxProcs; n *= 2 {
		procs = append(procs, n)
	}
	points := p.CollectiveWall(procs)
	if c.JSON {
		c.EmitJSON("collective-wall", points)
		return
	}

	t := stats.NewTable("procs", "sync(s)", "exchange(s)", "io(s)", "total(s)", "sync-share")
	for _, pt := range points {
		t.AddRow(pt.Procs, pt.Breakdown.Sync, pt.Breakdown.Exchange, pt.Breakdown.IO,
			pt.Breakdown.Total(), fmt.Sprintf("%.0f%%", pt.SyncShare()*100))
	}
	fmt.Println("Collective wall profile (MPI-Tile-IO, baseline extended two-phase)")
	fmt.Println(t)
	last := points[len(points)-1]
	if last.SyncShare() > 0.5 {
		fmt.Printf("At %d processes synchronization consumes %.0f%% of collective I/O time —\n",
			last.Procs, last.SyncShare()*100)
		fmt.Println("the collective wall the paper identifies (72% at 512 procs on Jaguar).")
	}
}

// maybeObserve runs one instrumented tile write when -trace-out or -metrics
// asked for it: the trace recorder and metrics registry thread through every
// layer, the Perfetto export is schema-validated before it is written, and
// the critical-path report names the bounding rank and phase.
func maybeObserve(c *cli.Common, groups int) {
	if c.TraceOut == "" && !c.Metrics {
		return
	}
	p := experiments.BenchPreset()
	c.ApplyBase(&p)
	var plan *fault.Plan
	if c.Scenario != "" && c.Scenario != "all" {
		plan = c.Plan()
	}
	o := experiments.ObservedTileWrite(p, c.Procs, groups, plan)
	if c.TraceOut != "" {
		data, err := o.Perfetto()
		if err != nil {
			cli.Fatalf("collwall: trace export: %v", err)
		}
		if err := cli.ValidateTraceEvents(data); err != nil {
			cli.Fatalf("collwall: trace export failed validation: %v", err)
		}
		if err := os.WriteFile(c.TraceOut, data, 0o644); err != nil {
			cli.Fatalf("collwall: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d spans, load in ui.perfetto.dev or chrome://tracing\n",
			c.TraceOut, o.Trace.Len())
	}
	if c.Metrics {
		if c.JSON {
			c.EmitJSON("observability", map[string]any{
				"metrics":       o.Snapshot,
				"critical_path": o.Path,
			})
			return
		}
		fmt.Printf("\nInstrumented tile write (%d procs, %d groups): %.6fs, %.2f GB/s\n",
			c.Procs, groups, o.Result.Elapsed, o.Result.Bandwidth()/1e9)
		fmt.Print(o.Snapshot.String())
		fmt.Print(o.Path.String())
	}
}

// runOverlap is the split-collective demonstration: the same multi-step tile
// write at each compute/IO ratio, blocking vs split, ext2ph vs ParColl —
// first healthy, then under the one-straggler scenario. Split collectives
// retire the two-phase rounds' I/O tails while the application computes, so
// as the ratio grows the hidden fraction rises and the split variants pull
// ahead of their blocking twins.
func runOverlap(c *cli.Common, groups, steps int, ratios []float64) {
	nprocs := c.Procs
	p := experiments.BenchPreset()
	c.ApplyBase(&p)
	plan, err := fault.Scenario(fault.OneStraggler)
	if err != nil {
		panic(err)
	}
	pts := p.OverlapSweep(nprocs, groups, steps, ratios, nil)
	pts = append(pts, p.OverlapSweep(nprocs, groups, steps, ratios, plan)...)
	if c.JSON {
		c.EmitJSON("overlap-sweep", pts)
		return
	}
	t := stats.NewTable("scenario", "ratio", "block-ext2ph(s)", "split-ext2ph(s)",
		fmt.Sprintf("block-parcoll-%d(s)", groups), fmt.Sprintf("split-parcoll-%d(s)", groups),
		"hidden-ext2ph", "hidden-parcoll")
	for _, pt := range pts {
		t.AddRow(pt.Scenario, pt.Ratio, pt.BlockExt2ph, pt.SplitExt2ph,
			pt.BlockParColl, pt.SplitParColl,
			fmt.Sprintf("%.0f%%", pt.HiddenExt2ph*100),
			fmt.Sprintf("%.0f%%", pt.HiddenParColl*100))
	}
	fmt.Printf("Overlap sweep (MPI-Tile-IO write, %d procs, %d dumps; ratio = compute per dump / blocking dump time)\n", nprocs, steps)
	fmt.Println(t)
	last := pts[len(ratios)-1]
	fmt.Printf("At ratio %g the split ParColl pipeline hides %.0f%% of its I/O tail and runs %.3fs faster than blocking ParColl.\n",
		last.Ratio, last.HiddenParColl*100, last.SplitGain())
}

// runSweep is the quantitative collective-wall demonstration: the same tile
// workload under growing straggler severity, baseline extended two-phase
// (groups=1) against ParColl. The baseline pays the maximum per-round stall
// over every rank at each globally synchronized round; ParColl pays only
// the maximum within each subgroup, so its elapsed time degrades strictly
// slower.
func runSweep(c *cli.Common, groups int, severities []float64) {
	nprocs := c.Procs
	p := experiments.BenchPreset()
	c.ApplyBase(&p)
	pts := p.StragglerSweep(nprocs, groups, severities)
	if c.JSON {
		c.EmitJSON("straggler-sweep", pts)
		return
	}
	t := stats.NewTable("severity", "ext2ph(s)", fmt.Sprintf("parcoll-%d(s)", groups), "gap(s)", "ext2ph-degr(s)", "parcoll-degr(s)")
	base := pts[0]
	for _, pt := range pts {
		t.AddRow(pt.Severity, pt.Ext2ph, pt.ParColl, pt.Gap(),
			fmt.Sprintf("%+.4f", pt.Ext2ph-base.Ext2ph),
			fmt.Sprintf("%+.4f", pt.ParColl-base.ParColl))
	}
	fmt.Printf("Straggler sweep (MPI-Tile-IO write, %d procs, heavy-tailed per-round noise)\n", nprocs)
	fmt.Println(t)
	last := pts[len(pts)-1]
	fmt.Printf("At severity %g the straggler noise costs the unpartitioned protocol %.3fs but ParColl-%d only %.3fs —\n",
		last.Severity, last.Ext2ph-base.Ext2ph, groups, last.ParColl-base.ParColl)
	fmt.Println("partitioning confines each straggler event to one subgroup instead of the whole job.")
}

// runScenarios profiles baseline vs ParColl tile writes under one named
// fault scenario, or the whole catalog.
func runScenarios(c *cli.Common, name string, groups int) {
	nprocs := c.Procs
	p := experiments.BenchPreset()
	c.ApplyBase(&p)
	var pts []experiments.ScenarioPoint
	if name == "all" {
		pts = p.ScenarioSuite(nprocs, groups)
	} else {
		plan, err := fault.Scenario(name)
		if err != nil {
			panic(err)
		}
		pts = append(pts, p.TileUnderFault(nprocs, 1, plan), p.TileUnderFault(nprocs, groups, plan))
	}
	if c.JSON {
		c.EmitJSON("fault-scenarios", pts)
		return
	}
	t := stats.NewTable("scenario", "groups", "elapsed(s)", "sync(s)", "io(s)", "perturbed-msgs")
	for _, pt := range pts {
		t.AddRow(pt.Scenario, pt.Groups, pt.Elapsed, pt.Breakdown.Sync, pt.Breakdown.IO, pt.Perturbed)
	}
	fmt.Printf("Fault scenarios (MPI-Tile-IO write, %d procs; groups=1 is baseline ext2ph)\n", nprocs)
	fmt.Println(t)
}

// runFailures is the fail-stop recovery demonstration: the tile write runs
// under crash-carrying plans, every rank's tile is verified byte-for-byte
// after recovery, and the detection/failover telemetry is compared between
// the unpartitioned baseline and ParColl. Partitioning confines failure
// detection and domain re-partitioning to the crashed aggregator's subgroup,
// so ParColl's time-to-recover comes out strictly lower.
func runFailures(c *cli.Common, name string, groups int) {
	nprocs := c.Procs
	p := experiments.BenchPreset()
	c.ApplyBase(&p)
	var pts []experiments.FailurePoint
	if name == "all" {
		pts = p.RecoverySuite(nprocs, groups)
	} else {
		plan, err := fault.Scenario(name)
		if err != nil {
			panic(err)
		}
		pts = append(pts, p.TileUnderFailure(nprocs, 1, plan), p.TileUnderFailure(nprocs, groups, plan))
	}
	if c.JSON {
		c.EmitJSON("failure-recovery", pts)
		return
	}
	t := stats.NewTable("scenario", "groups", "elapsed(s)", "detect", "failover", "reelect",
		"ttr(ms)", "goodput(GB/s)", "verified")
	for _, pt := range pts {
		t.AddRow(pt.Scenario, pt.Groups, pt.Elapsed,
			pt.Recovery.Detections, pt.Recovery.Failovers, pt.Recovery.Reelections,
			pt.Recovery.TimeToRecover*1e3, pt.Goodput/1e9, pt.Verified)
	}
	fmt.Printf("Fail-stop recovery (MPI-Tile-IO write, %d procs; groups=1 is baseline ext2ph; verified = read-back matches the pattern byte-for-byte)\n", nprocs)
	fmt.Println(t)
}

// renderGantt traces one baseline tile-IO collective write and draws the
// per-rank timeline, making the interleaved sync/exchange/io rounds — and
// the waiting that builds the wall — directly visible.
func renderGantt(c *cli.Common, nprocs int) {
	p := experiments.PaperPreset()
	c.ApplyBase(&p)
	rec := trace.New()
	env := experiments.EnvFor(p, p.TileScale, core.Options{})
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, nil, p.Workers, func(r *mpi.Rank) {
		r.SetTracer(rec)
		p.Tile.Write(r, env, "tile")
	})
	fmt.Printf("one collective tile write, %d ranks (s=sync e=exchange i=io o=other)\n\n", nprocs)
	fmt.Print(rec.Gantt(100))
	fmt.Println()
	t := stats.NewTable("class", "total seconds (all ranks)")
	for _, k := range []string{"sync", "exchange", "io", "other"} {
		t.AddRow(k, rec.ByKind()[k])
	}
	fmt.Println(t)
}
