package main

import (
	"reflect"
	"testing"
)

// TestDispatch pins the subcommand surface: each mode name routes, anything
// else (including flag-first invocations) falls through to the legacy path.
func TestDispatch(t *testing.T) {
	cases := []struct {
		args []string
		mode string
		rest []string
	}{
		{nil, "", nil},
		{[]string{"wall"}, "wall", []string{}},
		{[]string{"sweep", "-procs", "64"}, "sweep", []string{"-procs", "64"}},
		{[]string{"overlap"}, "overlap", []string{}},
		{[]string{"failures", "-scenario", "aggregator-crash"}, "failures", []string{"-scenario", "aggregator-crash"}},
		{[]string{"scenarios"}, "scenarios", []string{}},
		{[]string{"gantt", "-procs", "16"}, "gantt", []string{"-procs", "16"}},
		{[]string{"-sweep"}, "", []string{"-sweep"}},
		{[]string{"-json", "sweep"}, "", []string{"-json", "sweep"}},
		{[]string{"bogus"}, "", []string{"bogus"}},
	}
	for _, tc := range cases {
		mode, rest := dispatch(tc.args)
		if mode != tc.mode || !reflect.DeepEqual(rest, tc.rest) {
			t.Errorf("dispatch(%v) = (%q, %v), want (%q, %v)", tc.args, mode, rest, tc.mode, tc.rest)
		}
	}
}

// TestLegacyMode pins the deprecated-alias mapping (kept for one release):
// each old flag selects the same mode it used to, with the historical
// precedence, and reports which flag triggered it for the warning.
func TestLegacyMode(t *testing.T) {
	cases := []struct {
		gantt          int
		failures       string
		sweep, overlap bool
		scenario       string
		mode, flagName string
	}{
		{0, "", false, false, "", "wall", ""},
		{16, "", false, false, "", "gantt", "-gantt"},
		{0, "", false, true, "", "overlap", "-overlap"},
		{0, "", true, false, "", "sweep", "-sweep"},
		{0, "all", false, false, "", "failures", "-failures"},
		{0, "", false, false, "one-straggler", "scenarios", "-scenario"},
		// Historical precedence: gantt wins over everything, overlap over
		// sweep, sweep over failures, failures over scenario.
		{16, "all", true, true, "x", "gantt", "-gantt"},
		{0, "all", true, true, "x", "overlap", "-overlap"},
		{0, "all", true, false, "x", "sweep", "-sweep"},
		{0, "all", false, false, "x", "failures", "-failures"},
	}
	for _, tc := range cases {
		mode, flagName := legacyMode(tc.gantt, tc.failures, tc.sweep, tc.overlap, tc.scenario)
		if mode != tc.mode || flagName != tc.flagName {
			t.Errorf("legacyMode(%d, %q, %v, %v, %q) = (%q, %q), want (%q, %q)",
				tc.gantt, tc.failures, tc.sweep, tc.overlap, tc.scenario,
				mode, flagName, tc.mode, tc.flagName)
		}
	}
}
