// Command btio mirrors the NAS BT-IO full-mode experiment of the paper's
// Section 5.3: the solver's diagonally multi-partitioned solution array is
// appended to a shared file with collective I/O. Each process's cells
// scatter across the whole solution, so ParColl must switch to intermediate
// file views (the paper's Figure 4(c) pattern). Reproduces Figure 10.
// -procs caps the (square) process counts swept.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/stats"
)

func main() {
	verify := flag.Bool("verify", false, "verify file contents of a ParColl run")
	c := cli.Register(576)
	c.RegisterScenario("")
	flag.Parse()
	c.ResolveSpec(job.WorkloadBTIO)

	p := experiments.PaperPreset()
	c.Apply(&p)
	var procs []int
	for _, n := range []int{16, 64, 144, 256, 324, 576} {
		k := 1
		for k*k < n {
			k++
		}
		if n <= c.Procs && k*k == n && p.BT.N%int64(k) == 0 {
			procs = append(procs, n)
		}
	}
	points := p.BTIOScale(procs, func(n int) []int {
		var gs []int
		for _, g := range []int{4, 8, 16, 32, 64} {
			if g*4 <= n {
				gs = append(gs, g)
			}
		}
		return gs
	})
	if c.JSON {
		c.EmitJSON("btio-scale", points)
	} else {
		t := stats.NewTable("procs", "baseline", "ParColl(best)", "groups", "speedup")
		for _, pt := range points {
			t.AddRow(pt.Procs, stats.MBps(pt.BaselineBW), stats.MBps(pt.ParCollBW),
				pt.BestGroups, fmt.Sprintf("%.1fx", pt.ParCollBW/pt.BaselineBW))
		}
		fmt.Printf("NAS BT-IO full mode (%d^3 cells, %d dumps; Fig 10)\n\n", p.BT.N, p.BT.Steps)
		fmt.Println(t)
	}
	if *verify {
		n := procs[0]
		if err := experiments.VerifyBT(p, n, core.Options{NumGroups: 4}); err != nil {
			cli.Fatalf("VERIFY FAILED: %v", err)
		}
		fmt.Printf("verify: %d-proc BT-IO file byte-exact\n", n)
	}
}
