// Command explore is the sensitivity-analysis tool behind the paper's
// closing question — how the collective wall and ParColl's benefit move on
// machines with different networks and file systems. It sweeps one model
// parameter, runs the tile workload with the baseline protocol and with
// ParColl, and reports bandwidth plus the baseline's synchronization share
// at each point.
//
// Usage:
//
//	explore -param latency  -values 1e-6,5e-6,2e-5,1e-4
//	explore -param tailprob -values 0,0.02,0.1
//	explore -param ostbw    -values 7e7,1.4e8,5.6e8
//	explore -param osts     -values 18,72,288
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	param := flag.String("param", "latency", "parameter to sweep: latency, tailprob, jitter, ostbw, osts, switch")
	values := flag.String("values", "", "comma-separated values (defaults depend on param)")
	groups := flag.Int("groups", 16, "ParColl subgroup count")
	c := cli.Register(128)
	c.RegisterScenario("")
	flag.Parse()
	c.ResolveSpec("")

	vals := parseValues(*param, *values)

	type row struct {
		Param      string  `json:"param"`
		Value      float64 `json:"value"`
		BaselineBW float64 `json:"baseline_bw"`
		SyncShare  float64 `json:"sync_share"`
		ParCollBW  float64 `json:"parcoll_bw"`
		Groups     int     `json:"groups"`
	}
	var rows []row
	t := stats.NewTable(*param, "baseline", "sync-share", fmt.Sprintf("ParColl-%d", *groups), "speedup")
	var xs, speedups []float64
	for _, v := range vals {
		p := applyParam(experiments.PaperPreset(), *param, v)
		c.Apply(&p)
		base, share := runTile(p, c.Procs, 1)
		pc, _ := runTile(p, c.Procs, *groups)
		rows = append(rows, row{*param, v, base, share, pc, *groups})
		t.AddRow(fmt.Sprintf("%g", v), stats.MBps(base), fmt.Sprintf("%.0f%%", share*100),
			stats.MBps(pc), fmt.Sprintf("%.2fx", pc/base))
		xs = append(xs, v)
		speedups = append(speedups, pc/base)
	}
	if c.JSON {
		c.EmitJSON("sensitivity", rows)
		return
	}
	fmt.Printf("sensitivity of the collective wall to %s (%d procs, tile workload)\n\n", *param, c.Procs)
	fmt.Println(t)
	fmt.Println(viz.TrendChart([]viz.Series{
		{Name: "ParColl speedup", X: xs, Y: speedups, Marker: 'x'},
	}, 8))
}

// runTile measures tile-IO collective-write bandwidth and the mean sync
// share for one configuration.
func runTile(p experiments.Preset, nprocs, groups int) (bw, syncShare float64) {
	env := experiments.EnvFor(p, p.TileScale, core.Options{NumGroups: groups})
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, p.Fault, p.Workers, func(r *mpi.Rank) {
		res := p.Tile.Write(r, env, "tile")
		m := workload.MeanBreakdown(mpi.WorldComm(r), res.Breakdown)
		if r.WorldRank() == 0 {
			bw = res.Bandwidth()
			if tot := m.Total(); tot > 0 {
				syncShare = m.Sync / tot
			}
		}
	})
	return bw, syncShare
}

func applyParam(p experiments.Preset, param string, v float64) experiments.Preset {
	switch param {
	case "latency":
		p.Cluster.Latency = v
	case "tailprob":
		p.Lustre.TailProb = v
	case "jitter":
		p.Lustre.Jitter = v
	case "ostbw":
		p.Lustre.OSTBandwidth = v
	case "osts":
		p.Lustre.NumOSTs = int(v)
	case "switch":
		p.Lustre.SwitchPenalty = v
	}
	return p
}

func parseValues(param, s string) []float64 {
	if s == "" {
		defaults := map[string][]float64{
			"latency":  {1e-6, 5e-6, 2e-5, 1e-4},
			"tailprob": {0, 0.02, 0.05, 0.1},
			"jitter":   {0, 0.05, 0.1, 0.3},
			"ostbw":    {7e7, 1.4e8, 2.8e8, 5.6e8},
			"osts":     {18, 36, 72, 144},
			"switch":   {0, 1.5e-3, 5e-3},
		}
		d, ok := defaults[param]
		if !ok {
			cli.Fatalf("unknown param %q", param)
		}
		return d
	}
	return cli.ParseFloats("value", s)
}
