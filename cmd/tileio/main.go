// Command tileio mirrors the MPI-Tile-IO experiments of the paper's
// Section 5.2: a dense 2D dataset of one tile per process, written and read
// with collective I/O. It sweeps ParColl subgroup counts (-sweep groups) or
// process counts (-sweep procs), reproducing Figures 7/8 and 9.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/stats"
)

func main() {
	sweep := flag.String("sweep", "groups", "sweep mode: groups (Figs 7/8) or procs (Fig 9)")
	verify := flag.Bool("verify", false, "verify tile contents after a ParColl run")
	c := cli.Register(64)
	c.RegisterScenario("")
	flag.Parse()
	c.ResolveSpec(job.WorkloadTileIO)

	p := experiments.PaperPreset()
	c.Apply(&p)
	switch *sweep {
	case "groups":
		var groups []int
		for g := 1; g <= c.Procs; g *= 2 {
			groups = append(groups, g)
		}
		points := p.TileGroupSweep(c.Procs, groups)
		if c.JSON {
			c.EmitJSON("tile-group-sweep", points)
			break
		}
		t := stats.NewTable("groups", "write", "read", "sync(s)", "sync-share")
		for _, pt := range points {
			t.AddRow(pt.Groups, stats.MBps(pt.WriteBW), stats.MBps(pt.ReadBW),
				pt.Sync, fmt.Sprintf("%.0f%%", pt.SyncShare*100))
		}
		fmt.Printf("MPI-Tile-IO vs subgroups (%d procs, %s virtual per tile)\n\n",
			c.Procs, stats.Bytes(p.Tile.TileBytes()*int64(p.TileScale)))
		fmt.Println(t)
	case "procs":
		var ps []int
		for n := 16; n <= c.Procs; n *= 2 {
			ps = append(ps, n)
		}
		points := p.TileScalability(ps, func(n int) []int {
			var gs []int
			for _, g := range []int{8, 16, 32, 64, 128} {
				if g*4 <= n {
					gs = append(gs, g)
				}
			}
			return gs
		})
		if c.JSON {
			c.EmitJSON("tile-scalability", points)
			break
		}
		t := stats.NewTable("procs", "baseline", "ParColl(best)", "groups", "speedup")
		for _, pt := range points {
			t.AddRow(pt.Procs, stats.MBps(pt.BaselineBW), stats.MBps(pt.ParCollBW),
				pt.BestGroups, fmt.Sprintf("%.1fx", pt.ParCollBW/pt.BaselineBW))
		}
		fmt.Println("MPI-Tile-IO write scalability (Fig 9)")
		fmt.Println(t)
	default:
		cli.Fatalf("unknown sweep %q", *sweep)
	}
	if *verify {
		if err := experiments.VerifyTile(p, c.Procs, core.Options{NumGroups: 4}); err != nil {
			cli.Fatalf("VERIFY FAILED: %v", err)
		}
		fmt.Println("verify: tile contents byte-exact")
	}
}
