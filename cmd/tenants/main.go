// Command tenants runs a multi-tenant trace — several independent jobs
// sharing one simulated file system — under a server-side QoS policy, and
// reports per-job elapsed time, bandwidth, collective-call latency
// quantiles, QoS admission delay, and (with -baseline) the slowdown each
// job suffered versus running alone on the same machine.
//
// Usage:
//
//	tenants                          # the canonical 4-job mixed trace, FIFO
//	tenants -policy fair             # same trace under fair queueing
//	tenants -sweep                   # compare every QoS policy on one trace
//	tenants -scenario one-straggler  # fault the shared machine
//	tenants -trace trace.json        # run a declarative trace file
//	tenants -emit-trace              # print the default trace as JSON and exit
//
// A trace file is a tenancy.Trace: a list of job.Specs (the same schema the
// single-job tools accept via -spec) plus trace-level policy/backend/seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/stats"
	"repro/internal/tenancy"
)

func main() {
	tracePath := flag.String("trace", "", "trace JSON file (tenancy.Trace); empty runs the built-in mixed trace")
	emit := flag.Bool("emit-trace", false, "print the effective trace as JSON and exit (a template for -trace)")
	policy := flag.String("policy", "", "QoS policy: "+joinNames()+" (default fifo; overrides the trace file's)")
	sweepAll := flag.Bool("sweep", false, "run the trace under every QoS policy and compare")
	baseline := flag.Bool("baseline", true, "also run each job isolated and report slowdown ratios")
	perJob := flag.Int("procs-per-job", 8, "size parameter of the built-in mixed trace (ignored with -trace)")
	scenario := flag.String("scenario", "", "fault scenario applied to the shared machine (overrides the trace file's)")
	seed := flag.Int64("seed", 0, "simulation seed (0 keeps the trace file's, default 1)")
	workers := flag.Int("workers", 0, "engine workers (0 keeps the trace file's; results bit-identical at any count)")
	backend := flag.String("backend", "", "shared storage backend (overrides the trace file's)")
	jsonOut := flag.Bool("json", false, "emit JSON instead of tables")
	metrics := flag.Bool("metrics", false, "print the observability snapshot (per-job gauges + shared-backend counters)")
	flag.Parse()

	t := tenancy.MixedTrace(*perJob)
	if *tracePath != "" {
		data, err := os.ReadFile(*tracePath)
		if err != nil {
			cli.Fatalf("reading -trace: %v", err)
		}
		t, err = tenancy.DecodeTrace(data)
		if err != nil {
			cli.Fatalf("%v", err)
		}
	}
	if *policy != "" {
		t.Policy = *policy
	}
	if *scenario != "" {
		t.Scenario = *scenario
	}
	if *seed != 0 {
		t.Seed = *seed
	}
	if *workers != 0 {
		t.Workers = *workers
	}
	if *backend != "" {
		t.Backend = *backend
	}
	t = t.WithDefaults()
	if err := t.Validate(); err != nil {
		cli.Fatalf("%v", err)
	}
	if *emit {
		os.Stdout.Write(t.Encode())
		return
	}

	p := experiments.BenchPreset()
	if *sweepAll {
		reps, err := tenancy.Sweep(p, t, nil)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		if *jsonOut {
			cli.EmitJSON("tenancy-sweep", reps)
			return
		}
		for _, rep := range reps {
			printReport(rep, true)
		}
		printSweepSummary(reps)
		return
	}

	var rep tenancy.Report
	var err error
	reg := obs.New()
	switch {
	case *baseline:
		rep, err = tenancy.RunWithBaseline(p, t)
	case *metrics:
		rep, err = tenancy.RunObserved(p, t, reg)
	default:
		rep, err = tenancy.Run(p, t)
	}
	if err != nil {
		cli.Fatalf("%v", err)
	}
	if *metrics && *baseline {
		// The baseline path has its own runs; capture the multi-tenant one.
		rep.FillObs(reg)
	}
	if *jsonOut {
		cli.EmitJSON("tenancy", rep)
		return
	}
	printReport(rep, *baseline)
	if *metrics {
		fmt.Print(reg.Snapshot().String())
	}
}

func joinNames() string {
	s := ""
	for i, n := range qos.Names() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// printReport renders one trace run as a table; withSlowdown adds the
// vs-isolated ratio columns RunWithBaseline fills.
func printReport(rep tenancy.Report, withSlowdown bool) {
	fmt.Printf("policy=%s procs=%d makespan=%.6fs\n\n", rep.Policy, rep.Procs, rep.End)
	cols := []string{"job", "workload", "procs", "arrive", "elapsed(s)", "bw", "p50(s)", "p99(s)", "qos-delay(s)", "verified"}
	if withSlowdown {
		cols = append(cols, "slowdown", "slow-p99")
	}
	t := stats.NewTable(cols...)
	for _, j := range rep.Jobs {
		row := []any{j.Name, j.Workload, j.Procs, j.Arrival,
			fmt.Sprintf("%.6f", j.Elapsed()), stats.MBps(j.BW),
			fmt.Sprintf("%.6f", j.P50), fmt.Sprintf("%.6f", j.P99),
			fmt.Sprintf("%.6f", j.QoSDelaySecs), j.Verified}
		if withSlowdown {
			row = append(row, fmt.Sprintf("%.3fx", j.Slowdown), fmt.Sprintf("%.3fx", j.SlowdownP99))
		}
		t.AddRow(row...)
	}
	fmt.Println(t)
}

// printSweepSummary compares the policies head to head on the metrics the
// QoS layer exists to move: the smallest job's p99 slowdown and the trace's
// aggregate throughput.
func printSweepSummary(reps []tenancy.Report) {
	if len(reps) == 0 {
		return
	}
	small := 0
	for j, s := range reps[0].Jobs {
		if s.Procs < reps[0].Jobs[small].Procs {
			small = j
		}
	}
	t := stats.NewTable("policy", "makespan(s)", "agg-bytes/s",
		fmt.Sprintf("%s p99(s)", reps[0].Jobs[small].Name),
		fmt.Sprintf("%s slow-p99", reps[0].Jobs[small].Name))
	for _, rep := range reps {
		var bytes int64
		for _, j := range rep.Jobs {
			bytes += j.Bytes
		}
		agg := 0.0
		if rep.End > 0 {
			agg = float64(bytes) / rep.End
		}
		t.AddRow(rep.Policy, fmt.Sprintf("%.6f", rep.End), stats.MBps(agg),
			fmt.Sprintf("%.6f", rep.Jobs[small].P99),
			fmt.Sprintf("%.3fx", rep.Jobs[small].SlowdownP99))
	}
	fmt.Println("QoS policy comparison (smallest job is the latency-sensitive tenant)")
	fmt.Println(t)
}
