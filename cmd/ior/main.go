// Command ior mirrors the IOR shared-file collective experiment of the
// paper's Section 5.1: every process writes a contiguous block into one
// shared file in fixed-size transfer units through collective I/O, with a
// configurable number of ParColl subgroups.
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	groups := flag.String("groups", "1,2,4,8,16", "comma list of subgroup counts to sweep")
	verify := flag.Bool("verify", false, "verify file contents after each run")
	ostStats := flag.Bool("oststats", false, "print per-OST service statistics for the last configuration")
	backends := flag.Bool("backends", false,
		"sweep the storage backends instead: strided independent write + checkpoint burst on every -backend choice")
	burstRatio := flag.Float64("burst-ratio", 1, "checkpoint-burst compute per step as a multiple of the reference I/O time")
	c := cli.Register(128)
	c.RegisterScenario("")
	flag.Parse()
	c.ResolveSpec(job.WorkloadIOR)

	p := experiments.PaperPreset()
	c.Apply(&p)
	if *backends {
		runBackendSweep(p, c, *burstRatio)
		return
	}
	gs := cli.ParseInts("group count", *groups)

	points := p.IORGroups([]int{c.Procs}, func(int) []int { return gs })
	if c.JSON {
		c.EmitJSON("ior-groups", points)
	} else {
		fmt.Printf("IOR collective write: %d procs, %s virtual per proc in %s units\n\n",
			c.Procs, stats.Bytes(p.IORBlock*int64(p.IORScale)), stats.Bytes(p.IORTransfer*int64(p.IORScale)))
		t := stats.NewTable("config", "bandwidth")
		for _, pt := range points {
			label := fmt.Sprintf("ParColl-%d", pt.Groups)
			if pt.Groups == 1 {
				label = "baseline"
			}
			t.AddRow(label, stats.MBps(pt.BW))
		}
		fmt.Println(t)
	}
	if *ostStats {
		printOSTStats(p, c.Procs, gs[len(gs)-1])
	}
	if *verify {
		if err := verifyRun(p, c.Procs, gs[len(gs)-1]); err != nil {
			cli.Fatalf("VERIFY FAILED: %v", err)
		}
		fmt.Println("verify: file contents byte-exact")
	}
}

func verifyRun(p experiments.Preset, nprocs, groups int) error {
	return experiments.VerifyIOR(p, nprocs, core.Options{NumGroups: groups})
}

// runBackendSweep compares the storage backends head to head: the strided
// independent write (where list-I/O collapses per-extent requests) and the
// checkpoint burst (where the burst buffer hides drains under compute).
func runBackendSweep(p experiments.Preset, c *cli.Common, ratio float64) {
	names := experiments.BackendNames()
	sweep := p.BackendSweep(c.Procs, names)
	burst := p.CheckpointBurst(c.Procs, ratio, names)
	if c.JSON {
		c.EmitJSON("backend-sweep", map[string]any{"strided": sweep, "burst": burst})
		return
	}
	fmt.Printf("Strided independent IOR write: %d procs, %s virtual per proc in %s units\n\n",
		c.Procs, stats.Bytes(p.IORBlock*int64(p.IORScale)), stats.Bytes(p.IORTransfer*int64(p.IORScale)))
	t := stats.NewTable("backend", "bandwidth", "requests")
	for _, pt := range sweep {
		t.AddRow(pt.Backend, stats.MBps(pt.BW), fmt.Sprintf("%d", pt.Requests))
	}
	fmt.Println(t)
	fmt.Printf("\nCheckpoint burst (compute/IO ratio %g):\n\n", ratio)
	b := stats.NewTable("backend", "write-stall", "drain-tail", "elapsed")
	for _, pt := range burst {
		b.AddRow(pt.Backend, fmt.Sprintf("%.4fs", pt.WriteSecs),
			fmt.Sprintf("%.4fs", pt.DrainSecs), fmt.Sprintf("%.4fs", pt.Elapsed))
	}
	fmt.Println(b)
}

// printOSTStats reruns the last configuration and summarizes where the OST
// time went: requests, client switches, tail events, and the busiest
// targets — the storage-side view of the collective wall.
func printOSTStats(p experiments.Preset, nprocs, groups int) {
	env := experiments.EnvFor(p, p.IORScale, core.Options{NumGroups: groups})
	w := workload.IOR{Block: p.IORBlock, Transfer: p.IORTransfer}
	mpi.RunPlanWorkers(nprocs, p.Cluster, p.Seed, p.Fault, p.Workers, func(r *mpi.Rank) {
		w.Write(r, env, "ior-stats")
	})
	st := env.FS.Stats()
	var req, sw, tails int64
	var busy float64
	for _, s := range st {
		req += s.Requests
		sw += s.Switches
		tails += s.Tails
		busy += s.BusySecs
	}
	fmt.Printf("\nOST statistics (ParColl-%d): %d requests, %d client switches, %d tail events, %.1fs total service\n\n",
		groups, req, sw, tails, busy)
	idx := make([]int, len(st))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return st[idx[a]].BusySecs > st[idx[b]].BusySecs })
	var bars []viz.Bar
	for _, i := range idx[:min(8, len(idx))] {
		bars = append(bars, viz.Bar{Label: fmt.Sprintf("OST %02d", i), Value: st[i].BusySecs})
	}
	fmt.Println(viz.BarChart(bars, 40, "%.2fs busy"))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
