// Command ior mirrors the IOR shared-file collective experiment of the
// paper's Section 5.1: every process writes a contiguous block into one
// shared file in fixed-size transfer units through collective I/O, with a
// configurable number of ParColl subgroups.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mpi"
	"repro/internal/stats"
	"repro/internal/viz"
	"repro/internal/workload"
)

func main() {
	procs := flag.Int("procs", 128, "number of simulated processes")
	groups := flag.String("groups", "1,2,4,8,16", "comma list of subgroup counts to sweep")
	verify := flag.Bool("verify", false, "verify file contents after each run")
	ostStats := flag.Bool("oststats", false, "print per-OST service statistics for the last configuration")
	flag.Parse()

	p := experiments.PaperPreset()
	gs, err := parseInts(*groups)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("IOR collective write: %d procs, %s virtual per proc in %s units\n\n",
		*procs, stats.Bytes(p.IORBlock*int64(p.IORScale)), stats.Bytes(p.IORTransfer*int64(p.IORScale)))
	t := stats.NewTable("config", "bandwidth")
	points := p.IORGroups([]int{*procs}, func(int) []int { return gs })
	for _, pt := range points {
		label := fmt.Sprintf("ParColl-%d", pt.Groups)
		if pt.Groups == 1 {
			label = "baseline"
		}
		t.AddRow(label, stats.MBps(pt.BW))
	}
	fmt.Println(t)
	if *ostStats {
		printOSTStats(p, *procs, gs[len(gs)-1])
	}
	if *verify {
		if err := verifyRun(p, *procs, gs[len(gs)-1]); err != nil {
			fmt.Fprintln(os.Stderr, "VERIFY FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("verify: file contents byte-exact")
	}
}

func verifyRun(p experiments.Preset, nprocs, groups int) error {
	return experiments.VerifyIOR(p, nprocs, core.Options{NumGroups: groups})
}

// printOSTStats reruns the last configuration and summarizes where the OST
// time went: requests, client switches, tail events, and the busiest
// targets — the storage-side view of the collective wall.
func printOSTStats(p experiments.Preset, nprocs, groups int) {
	env := experiments.EnvFor(p, p.IORScale, core.Options{NumGroups: groups})
	w := workload.IOR{Block: p.IORBlock, Transfer: p.IORTransfer}
	mpi.Run(nprocs, p.Cluster, p.Seed, func(r *mpi.Rank) {
		w.Write(r, env, "ior-stats")
	})
	st := env.FS.Stats()
	var req, sw, tails int64
	var busy float64
	for _, s := range st {
		req += s.Requests
		sw += s.Switches
		tails += s.Tails
		busy += s.BusySecs
	}
	fmt.Printf("\nOST statistics (ParColl-%d): %d requests, %d client switches, %d tail events, %.1fs total service\n\n",
		groups, req, sw, tails, busy)
	idx := make([]int, len(st))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return st[idx[a]].BusySecs > st[idx[b]].BusySecs })
	var bars []viz.Bar
	for _, i := range idx[:min(8, len(idx))] {
		bars = append(bars, viz.Bar{Label: fmt.Sprintf("OST %02d", i), Value: st[i].BusySecs})
	}
	fmt.Println(viz.BarChart(bars, 40, "%.2fs busy"))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitComma(s) {
		var v int
		if _, err := fmt.Sscanf(f, "%d", &v); err != nil || v < 1 {
			return nil, fmt.Errorf("bad group count %q", f)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no group counts given")
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
