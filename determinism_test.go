// Determinism regression tests. The simulator's virtual-time results must
// be a pure function of (workload, config, seed): the scheduler breaks ties
// by (readyAt, proc id), wildcard receives resolve by global deposit
// sequence, and no code path consults wall time or map iteration order for
// anything that feeds the clock. These tests pin that property two ways —
// run-to-run identity within a build, and bit-exact golden values that a
// performance refactor must not move.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
)

// TestFig1RunTwiceIdentical runs the Figure 1 experiment twice with the
// same seed and asserts bit-identical virtual-time results.
func TestFig1RunTwiceIdentical(t *testing.T) {
	p := experiments.BenchPreset()
	procs := []int{16, 64}
	first := p.CollectiveWall(procs)
	second := p.CollectiveWall(procs)
	for i := range first {
		a, b := first[i], second[i]
		if a.Breakdown != b.Breakdown {
			t.Errorf("procs=%d: breakdown differs between runs:\n  first:  %+v\n  second: %+v",
				a.Procs, a.Breakdown, b.Breakdown)
		}
		if fa, fb := a.SyncShare(), b.SyncShare(); fa != fb {
			t.Errorf("procs=%d: sync share differs: %x vs %x", a.Procs, fa, fb)
		}
	}
}

// goldenMetrics computes the pinned figure metrics under one preset. The
// preset's engine choice (Workers) must not matter: the serial golden test
// and the parallel-engine tests both compare its output against
// goldenWant.
func goldenMetrics(p experiments.Preset) map[string]string {
	got := make(map[string]string)
	for _, n := range []int{16, 32, 64} {
		pts := p.CollectiveWall([]int{n})
		bd := pts[0].Breakdown
		got[fmt.Sprintf("fig1/procs=%d", n)] = fmt.Sprintf(
			"sync=%x exch=%x io=%x other=%x share=%x",
			bd.Sync, bd.Exchange, bd.IO, bd.Other, pts[0].SyncShare())
	}
	for _, g := range p.TileGroupSweep(64, []int{1, 8}) {
		got[fmt.Sprintf("fig7/groups=%d", g.Groups)] = fmt.Sprintf(
			"writeBW=%x readBW=%x sync=%x", g.WriteBW, g.ReadBW, g.Sync)
	}
	ior := p.IORGroups([]int{64}, func(int) []int { return []int{8} })
	got["fig6/groups=8"] = fmt.Sprintf("BW=%x", ior[0].BW)
	return got
}

// goldenWant are the bit-exact hex-float golden values (captured from the
// original implementation).
var goldenWant = map[string]string{
		"fig1/procs=16": "sync=0x1.45cec2a04607cp-05 exch=0x1.9f291cfc318a2p-10 io=0x1.9862d41837c06p-05 other=0x1.2741be9e3558ap-06 share=0x1.74da491cba4cfp-02",
		"fig1/procs=32": "sync=0x1.509a2c87cceeep-05 exch=0x1.841fb4d12d7fbp-09 io=0x1.9c2172baaaefp-05 other=0x1.4d30eda4e7a59p-06 share=0x1.6ed7d409ded58p-02",
		"fig1/procs=64": "sync=0x1.63e9487928e0ap-05 exch=0x1.841fb4d12d7f5p-09 io=0x1.a68c260b0a957p-05 other=0x1.5fa469d194fa5p-06 share=0x1.74725da5c14dcp-02",
		"fig7/groups=1": "writeBW=0x1.923130a372c17p+31 readBW=0x1.d81cae2666af7p+30 sync=0x1.63e9487928e0ap-05",
		"fig7/groups=8": "writeBW=0x1.9e2cb7465c2a8p+31 readBW=0x1.4145bdf0281b8p+31 sync=0x1.41d74f087c9f3p-05",
	"fig6/groups=8": "BW=0x1.63122dc8f9919p+30",
}

// TestGoldenVirtualTimeMetrics pins the simulated metrics to bit-exact
// hex-float golden values (captured from the original implementation).
// A change here means the simulation's virtual-time behaviour moved —
// deliberate model changes must update the goldens and say why; pure
// performance work must leave them untouched.
func TestGoldenVirtualTimeMetrics(t *testing.T) {
	got := goldenMetrics(experiments.BenchPreset())
	for k, w := range goldenWant {
		if got[k] != w {
			t.Errorf("%s:\n  got:  %s\n  want: %s", k, got[k], w)
		}
	}
}
