// Storage-backend acceptance tests: the claims the pluggable-backend seam
// was built to make checkable.
//
//   - List-I/O: on a strided (noncontiguous) IOR write, the listio backend
//     must serve strictly fewer storage requests than the per-extent lustre
//     model while the target-served bytes agree — Ching et al.'s list-I/O
//     argument as a conserved-quantity test.
//   - Burst buffer: on a checkpoint burst with per-step compute at least as
//     long as the reference I/O time, the bb backend's write-call seconds
//     must come in strictly below lustre's (the drain hides under compute),
//     and the checkpoint must read back byte-exact after the final drain.
//   - Both sweeps are run-twice identical — backends keep the repo's
//     determinism contract.
package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

const backendProcs = 16

func TestBackendSweepListIO(t *testing.T) {
	p := experiments.BenchPreset()
	pts := p.BackendSweep(backendProcs, experiments.BackendNames())
	if len(pts) != 3 {
		t.Fatalf("sweep returned %d points, want 3", len(pts))
	}
	byName := map[string]experiments.BackendPoint{}
	for _, pt := range pts {
		byName[pt.Backend] = pt
		if pt.Elapsed <= 0 || pt.BW <= 0 {
			t.Errorf("%s: degenerate point %+v", pt.Backend, pt)
		}
		if pt.Requests <= 0 || pt.VirtBytes <= 0 {
			t.Errorf("%s: no storage traffic recorded: %+v", pt.Backend, pt)
		}
	}
	lus, lio := byName["lustre"], byName["listio"]
	if lio.Requests >= lus.Requests {
		t.Errorf("list-I/O served %d requests, lustre %d: want strictly fewer",
			lio.Requests, lus.Requests)
	}
	if lio.VirtBytes != lus.VirtBytes {
		t.Errorf("bytes not conserved across backends: listio %d, lustre %d",
			lio.VirtBytes, lus.VirtBytes)
	}

	t.Run("RunTwiceIdentical", func(t *testing.T) {
		again := p.BackendSweep(backendProcs, experiments.BackendNames())
		for i := range pts {
			if pts[i] != again[i] {
				t.Errorf("%s: sweep differs between runs:\n  first:  %+v\n  second: %+v",
					pts[i].Backend, pts[i], again[i])
			}
		}
	})
}

func TestCheckpointBurst(t *testing.T) {
	p := experiments.BenchPreset()
	// ratio 1: each step's compute equals the reference per-step I/O time —
	// the acceptance threshold where a staging tier must win.
	pts := p.CheckpointBurst(backendProcs, 1, experiments.BackendNames())
	byName := map[string]experiments.BurstPoint{}
	for _, pt := range pts {
		byName[pt.Backend] = pt
		if pt.Elapsed <= 0 || pt.WriteSecs <= 0 {
			t.Errorf("%s: degenerate point %+v", pt.Backend, pt)
		}
	}
	lus, b := byName["lustre"], byName["bb"]
	if b.WriteSecs >= lus.WriteSecs {
		t.Errorf("bb write-call seconds %g >= lustre %g at compute/IO ratio 1: drain did not hide",
			b.WriteSecs, lus.WriteSecs)
	}
	// Pass-through lustre pays only the Drain barrier itself — negligible
	// next to its write-call time.
	if lus.DrainSecs > lus.WriteSecs/100 {
		t.Errorf("pass-through lustre charged %g drain seconds (writes took %g): Drain is not a no-op",
			lus.DrainSecs, lus.WriteSecs)
	}
	// The byte-exact read-back after drain happens inside CheckpointBurst's
	// Verify (it panics the run on mismatch); reaching here means it passed.

	t.Run("RunTwiceIdentical", func(t *testing.T) {
		again := p.CheckpointBurst(backendProcs, 1, experiments.BackendNames())
		for i := range pts {
			if pts[i] != again[i] {
				t.Errorf("%s: burst sweep differs between runs:\n  first:  %+v\n  second: %+v",
					pts[i].Backend, pts[i], again[i])
			}
		}
	})
}
