// The benchmark regression harness: TestEmitBenchJSON reruns the Figure 1
// collective-wall benchmark under testing.Benchmark and writes a
// machine-readable report (BENCH_1.json) with wall-clock cost (ns/op,
// allocs/op, bytes/op), simulator throughput (virtual events per wall
// second), and the simulated metrics themselves. `make bench` drives it;
// DESIGN.md ("Performance model of the simulator") explains how to read
// the output. Committed reports let PRs diff simulator performance the
// same way golden tests diff simulated physics.
package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/sim"
)

// TestEmitBenchJSON writes the benchmark report to the path named by the
// BENCH_JSON environment variable (skipped when unset, so plain `go test`
// stays fast).
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark report")
	}
	p := experiments.BenchPreset()
	rep := perf.NewBenchReport()
	for _, procs := range fig1Procs {
		var pt experiments.WallPoint
		var st sim.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt, st = p.CollectiveWallStats(procs)
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		point := perf.BenchPoint{
			Name:        fmt.Sprintf("Fig1CollectiveWall/procs=%d", procs),
			NsPerOp:     nsPerOp,
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Metrics: map[string]float64{
				"sync_share":         pt.SyncShare(),
				"sim_events":         float64(st.Events()),
				"sim_events_per_sec": float64(st.Events()) / (nsPerOp / 1e9),
			},
		}
		rep.Add(point)
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, %.2g events/sec, sync=%.1f%%",
			point.Name, point.NsPerOp, point.AllocsPerOp,
			point.Metrics["sim_events_per_sec"], 100*point.Metrics["sync_share"])
	}
	if err := rep.Write(path); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}
