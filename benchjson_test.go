// The benchmark regression harness: TestEmitBenchJSON reruns the Figure 1
// collective-wall benchmark under testing.Benchmark and writes a
// machine-readable report (BENCH_8.json) with wall-clock cost (ns/op,
// allocs/op, bytes/op), simulator throughput (virtual events per wall
// second), and the simulated metrics themselves. `make bench` drives it;
// DESIGN.md ("Performance model of the simulator") explains how to read
// the output. Committed reports let PRs diff simulator performance the
// same way golden tests diff simulated physics.
package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/sim"
)

// TestEmitBenchJSON writes the benchmark report to the path named by the
// BENCH_JSON environment variable (skipped when unset, so plain `go test`
// stays fast).
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark report")
	}
	p := experiments.BenchPreset()
	rep := perf.NewBenchReport()
	var flatAllocs float64 // Fig1CollectiveWall/procs=256, for the guard
	for _, procs := range fig1Procs {
		var pt experiments.WallPoint
		var st sim.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt, st = p.CollectiveWallStats(procs)
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		point := perf.BenchPoint{
			Name:        fmt.Sprintf("Fig1CollectiveWall/procs=%d", procs),
			NsPerOp:     nsPerOp,
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Metrics: map[string]float64{
				"sync_share":         pt.SyncShare(),
				"sim_events":         float64(st.Events()),
				"sim_events_per_sec": float64(st.Events()) / (nsPerOp / 1e9),
			},
		}
		rep.Add(point)
		if procs == 256 {
			flatAllocs = point.AllocsPerOp
		}
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, %.2g events/sec, sync=%.1f%%",
			point.Name, point.NsPerOp, point.AllocsPerOp,
			point.Metrics["sim_events_per_sec"], 100*point.Metrics["sync_share"])
	}
	// Fat-node point: the same Fig1 workload on 16-PE nodes with the
	// two-level intra-node protocol on (DESIGN.md §13), so the report
	// tracks the hierarchical path's wall-clock and allocation cost
	// alongside the flat one's.
	fat := experiments.BenchPreset()
	fat.Cluster.PEsPerNode = 16
	fat.IntraNode = true
	{
		var pt experiments.WallPoint
		var st sim.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt, st = fat.CollectiveWallStats(64)
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		point := perf.BenchPoint{
			Name:        "Fig1CollectiveWallFatNode/procs=64/pes=16/intranode",
			NsPerOp:     nsPerOp,
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Metrics: map[string]float64{
				"pes_per_node":       16,
				"sync_share":         pt.SyncShare(),
				"sim_events":         float64(st.Events()),
				"sim_events_per_sec": float64(st.Events()) / (nsPerOp / 1e9),
			},
		}
		rep.Add(point)
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, sync=%.1f%%",
			point.Name, point.NsPerOp, point.AllocsPerOp, 100*point.Metrics["sync_share"])
	}
	// Healthy-path allocation guard: the flat 256-proc Fig1 point on the
	// default lustre backend must not have grown its allocs/op by more than
	// 1% over the BENCH_7.json baseline — the storage.Backend seam and the
	// vectored flush path must cost nothing when the backend has no native
	// list-I/O.
	if base, err := perf.ReadBenchReport("BENCH_7.json"); err == nil {
		var want float64
		for _, bp := range base.Points {
			if bp.Name == "Fig1CollectiveWall/procs=256" {
				want = bp.AllocsPerOp
			}
		}
		if want > 0 && flatAllocs > 0 {
			t.Logf("healthy-path guard: %.0f allocs/op vs BENCH_7 baseline %.0f", flatAllocs, want)
			if flatAllocs > want*1.01 {
				t.Errorf("healthy-path allocs/op regressed: %.0f > 1%% over BENCH_7 baseline %.0f", flatAllocs, want)
			}
		}
	}
	if err := rep.Write(path); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}
