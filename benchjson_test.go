// The benchmark regression harness: TestEmitBenchJSON reruns the Figure 1
// collective-wall benchmark under testing.Benchmark and writes a
// machine-readable report (BENCH_10.json) with wall-clock cost (ns/op,
// allocs/op, bytes/op), simulator throughput (virtual events per wall
// second), and the simulated metrics themselves. `make bench` drives it;
// DESIGN.md ("Performance model of the simulator") explains how to read
// the output. Committed reports let PRs diff simulator performance the
// same way golden tests diff simulated physics.
package repro_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/tenancy"
)

// TestEmitBenchJSON writes the benchmark report to the path named by the
// BENCH_JSON environment variable (skipped when unset, so plain `go test`
// stays fast).
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark report")
	}
	p := experiments.BenchPreset()
	rep := perf.NewBenchReport()
	var flatAllocs float64 // Fig1CollectiveWall/procs=256, for the guard
	for _, procs := range fig1Procs {
		var pt experiments.WallPoint
		var st sim.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt, st = p.CollectiveWallStats(procs)
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		point := perf.BenchPoint{
			Name:        fmt.Sprintf("Fig1CollectiveWall/procs=%d", procs),
			NsPerOp:     nsPerOp,
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Metrics: map[string]float64{
				"sync_share":         pt.SyncShare(),
				"sim_events":         float64(st.Events()),
				"sim_events_per_sec": float64(st.Events()) / (nsPerOp / 1e9),
			},
		}
		rep.Add(point)
		if procs == 256 {
			flatAllocs = point.AllocsPerOp
		}
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, %.2g events/sec, sync=%.1f%%",
			point.Name, point.NsPerOp, point.AllocsPerOp,
			point.Metrics["sim_events_per_sec"], 100*point.Metrics["sync_share"])
	}
	// Fat-node point: the same Fig1 workload on 16-PE nodes with the
	// two-level intra-node protocol on (DESIGN.md §13), so the report
	// tracks the hierarchical path's wall-clock and allocation cost
	// alongside the flat one's.
	fat := experiments.BenchPreset()
	fat.Cluster.PEsPerNode = 16
	fat.IntraNode = true
	{
		var pt experiments.WallPoint
		var st sim.Stats
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pt, st = fat.CollectiveWallStats(64)
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		point := perf.BenchPoint{
			Name:        "Fig1CollectiveWallFatNode/procs=64/pes=16/intranode",
			NsPerOp:     nsPerOp,
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Metrics: map[string]float64{
				"pes_per_node":       16,
				"sync_share":         pt.SyncShare(),
				"sim_events":         float64(st.Events()),
				"sim_events_per_sec": float64(st.Events()) / (nsPerOp / 1e9),
			},
		}
		rep.Add(point)
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, sync=%.1f%%",
			point.Name, point.NsPerOp, point.AllocsPerOp, 100*point.Metrics["sync_share"])
	}
	// Multi-tenant point: a 4-job 256-proc mixed trace under fair-share QoS
	// (DESIGN.md §16), so the report tracks the tenancy layer's wall-clock
	// and allocation cost alongside the single-job paths.
	{
		tr := tenancy.Trace{
			Jobs: []job.Spec{
				{Name: "tile-hog", Workload: job.WorkloadTileIO, Procs: 128, Groups: 8},
				{Name: "btio", Workload: job.WorkloadBTIO, Procs: 64, Groups: 4, Arrival: 0.002, Steps: 2},
				{Name: "ior", Workload: job.WorkloadIOR, Procs: 32, Groups: 4, Arrival: 0.004},
				{Name: "ckpt", Workload: job.WorkloadCheckpoint, Procs: 32, Groups: 4,
					Arrival: 0.006, Steps: 2, BlockBytes: 4 << 10, Interleave: 1 << 10},
			},
			Policy: "fair",
		}
		var tp tenancy.Report
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				tp, err = tenancy.Run(p, tr)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		point := perf.BenchPoint{
			Name:        "Tenancy4JobsFair/procs=256",
			NsPerOp:     nsPerOp,
			AllocsPerOp: float64(res.AllocsPerOp()),
			BytesPerOp:  float64(res.AllocedBytesPerOp()),
			Metrics: map[string]float64{
				"jobs":        float64(len(tp.Jobs)),
				"makespan":    tp.End,
				"hog_coll_p99": tp.Jobs[0].P99,
			},
		}
		rep.Add(point)
		t.Logf("%s: %.0f ns/op, %.0f allocs/op, makespan=%.4fs",
			point.Name, point.NsPerOp, point.AllocsPerOp, tp.End)
	}
	// Healthy-path allocation guard: the flat 256-proc Fig1 point on the
	// default lustre backend must not have grown its allocs/op by more than
	// 1% over the BENCH_8.json baseline — the per-job QoS/latency plumbing
	// (JobID threading, admission hook, latency recorder field) must cost
	// nothing on the single-job path.
	if base, err := perf.ReadBenchReport("BENCH_8.json"); err == nil {
		var want float64
		for _, bp := range base.Points {
			if bp.Name == "Fig1CollectiveWall/procs=256" {
				want = bp.AllocsPerOp
			}
		}
		if want > 0 && flatAllocs > 0 {
			t.Logf("healthy-path guard: %.0f allocs/op vs BENCH_8 baseline %.0f", flatAllocs, want)
			if flatAllocs > want*1.01 {
				t.Errorf("healthy-path allocs/op regressed: %.0f > 1%% over BENCH_8 baseline %.0f", flatAllocs, want)
			}
		}
	}
	if err := rep.Write(path); err != nil {
		t.Fatalf("writing %s: %v", path, err)
	}
}
