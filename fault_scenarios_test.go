// Fault-injection determinism and acceptance tests. Injected faults draw
// only from seeded, serialized RNGs, so a perturbed run is as reproducible
// as a healthy one: these tests pin run-to-run identity and bit-exact golden
// metrics for every named scenario, the invariance of the healthy scenario
// against running with no plan at all, and the paper's headline property —
// under growing straggler severity the unpartitioned protocol degrades
// strictly faster than ParColl.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

const (
	scenarioProcs  = 32
	scenarioGroups = 4
)

// TestFaultScenariosRunTwiceIdentical runs the whole scenario catalog twice
// and asserts bit-identical elapsed times, breakdowns, and perturbation
// counts.
func TestFaultScenariosRunTwiceIdentical(t *testing.T) {
	p := experiments.BenchPreset()
	first := p.ScenarioSuite(scenarioProcs, scenarioGroups)
	second := p.ScenarioSuite(scenarioProcs, scenarioGroups)
	if len(first) != len(second) || len(first) != 2*len(fault.Names()) {
		t.Fatalf("suite sizes: %d and %d, want %d", len(first), len(second), 2*len(fault.Names()))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Elapsed != b.Elapsed || a.Breakdown != b.Breakdown || a.Perturbed != b.Perturbed {
			t.Errorf("%s/groups=%d: runs differ:\n  first:  %+v\n  second: %+v",
				a.Scenario, a.Groups, a, b)
		}
	}
}

// TestHealthyScenarioMatchesNoPlan pins the zero-plan invariance: the
// explicit "healthy" scenario must be bit-identical to running with no fault
// plan installed at all (no hook may consume a draw or shift a clock when
// inactive).
func TestHealthyScenarioMatchesNoPlan(t *testing.T) {
	p := experiments.BenchPreset()
	healthy, err := fault.Scenario(fault.Healthy)
	if err != nil {
		t.Fatal(err)
	}
	for _, groups := range []int{1, scenarioGroups} {
		with := p.TileUnderFault(scenarioProcs, groups, healthy)
		without := p.TileUnderFault(scenarioProcs, groups, nil)
		if with.Elapsed != without.Elapsed || with.Breakdown != without.Breakdown {
			t.Errorf("groups=%d: healthy scenario != no plan:\n  healthy: %+v\n  none:    %+v",
				groups, with, without)
		}
		if with.Perturbed != 0 {
			t.Errorf("groups=%d: healthy run counted %d perturbed messages", groups, with.Perturbed)
		}
	}
}

// TestGoldenFaultScenarioMetrics pins each scenario's simulated metrics to
// bit-exact hex-float goldens (captured from the initial implementation).
// Deliberate changes to the fault model or scenario catalog must update
// these and say why; refactors must leave them untouched.
func TestGoldenFaultScenarioMetrics(t *testing.T) {
	p := experiments.BenchPreset()
	got := make(map[string]string)
	for _, pt := range p.ScenarioSuite(scenarioProcs, scenarioGroups) {
		got[fmt.Sprintf("%s/groups=%d", pt.Scenario, pt.Groups)] = fmt.Sprintf(
			"elapsed=%x sync=%x io=%x perturbed=%d",
			pt.Elapsed, pt.Breakdown.Sync, pt.Breakdown.IO, pt.Perturbed)
	}
	want := map[string]string{
		"healthy/groups=1":       "elapsed=0x1.d56fc411bdf5ep-04 sync=0x1.509a2c87cceeep-05 io=0x1.9c2172baaaefp-05 perturbed=0",
		"healthy/groups=4":       "elapsed=0x1.cd1b0b4381742p-04 sync=0x1.40251fd33ab74p-05 io=0x1.9c2172baaaeeep-05 perturbed=0",
		"hot-ost/groups=1":       "elapsed=0x1.6700eed93adeep-03 sync=0x1.98ce213739c79p-04 io=0x1.ac43901573dcap-05 perturbed=0",
		"hot-ost/groups=4":       "elapsed=0x1.615b389bb79f3p-03 sync=0x1.ab87b23c696e7p-05 io=0x1.ac43901573dc9p-05 perturbed=0",
		"jittery-net/groups=1":   "elapsed=0x1.d6ed669a256bcp-04 sync=0x1.5266a6baaddacp-05 io=0x1.9c1e79c6c20efp-05 perturbed=89",
		"jittery-net/groups=4":   "elapsed=0x1.d1e4e6858e76cp-04 sync=0x1.44410a2789191p-05 io=0x1.9c1e3629b67c8p-05 perturbed=87",
		"one-straggler/groups=1": "elapsed=0x1.70171587e89dbp-02 sync=0x1.1ad7cc3ddd9b4p-02 io=0x1.9c2172baaaee2p-05 perturbed=0",
		"one-straggler/groups=4": "elapsed=0x1.6df5a5ff22439p-02 sync=0x1.718d88ab9024fp-04 io=0x1.9c2172baaaeecp-05 perturbed=0",
		// Fail-stop catalog additions (PR 4). flaky-ost/groups=1 is
		// bit-identical to healthy: at that geometry every write happens to
		// fall between the scenario's failure windows, and outside a window
		// the injection hook consumes no RNG draw — the equality is itself a
		// determinism property worth pinning. one-agg-crash elapsed times are
		// dominated by the 250 ms detection watchdog both ways; the metric
		// that separates the protocols is time-to-recover (see
		// TestParCollRecoversFasterThanExt2ph in recovery_test.go).
		"flaky-ost/groups=1":     "elapsed=0x1.d56fc411bdf5ep-04 sync=0x1.509a2c87cceeep-05 io=0x1.9c2172baaaefp-05 perturbed=0",
		"flaky-ost/groups=4":     "elapsed=0x1.d94aa8fdbffafp-04 sync=0x1.38911ffee751ep-05 io=0x1.9c366e1170829p-05 perturbed=0",
		"lossy-net/groups=1":     "elapsed=0x1.dd866057d1a2ep-04 sync=0x1.63383c6c8b38bp-05 io=0x1.9bdfe9835f282p-05 perturbed=50",
		"lossy-net/groups=4":     "elapsed=0x1.d6eca0a9479ap-04 sync=0x1.52ab3ae8d29eep-05 io=0x1.9afa8941d5f0ep-05 perturbed=49",
		"one-agg-crash/groups=1": "elapsed=0x1.900f6dd26ab87p-02 sync=0x1.3c0d0d32f4c6p-02 io=0x1.9c9f9aef6f781p-05 perturbed=0",
		"one-agg-crash/groups=4": "elapsed=0x1.91cdd4b2ed70ap-02 sync=0x1.9e6e627deafccp-04 io=0x1.9c31cfaa1a28p-05 perturbed=0",
		// Storage-tier catalog additions (PR 9). All three are pinned
		// bit-identical to healthy ON PURPOSE: the suite runs on the lustre
		// backend, which has no staging tier and no pvfs servers, so these
		// plans' hooks must never fire, consume a draw, or shift a clock
		// there. (The ledger attached to faulted runs is likewise free.) The
		// plans' actual effects are exercised on their own backends in
		// storage_faults_test.go and the storagetest conformance suite.
		"lost-bb-node/groups=1":     "elapsed=0x1.d56fc411bdf5ep-04 sync=0x1.509a2c87cceeep-05 io=0x1.9c2172baaaefp-05 perturbed=0",
		"lost-bb-node/groups=4":     "elapsed=0x1.cd1b0b4381742p-04 sync=0x1.40251fd33ab74p-05 io=0x1.9c2172baaaeeep-05 perturbed=0",
		"flaky-drain/groups=1":      "elapsed=0x1.d56fc411bdf5ep-04 sync=0x1.509a2c87cceeep-05 io=0x1.9c2172baaaefp-05 perturbed=0",
		"flaky-drain/groups=4":      "elapsed=0x1.cd1b0b4381742p-04 sync=0x1.40251fd33ab74p-05 io=0x1.9c2172baaaeeep-05 perturbed=0",
		"dead-pvfs-server/groups=1": "elapsed=0x1.d56fc411bdf5ep-04 sync=0x1.509a2c87cceeep-05 io=0x1.9c2172baaaefp-05 perturbed=0",
		"dead-pvfs-server/groups=4": "elapsed=0x1.cd1b0b4381742p-04 sync=0x1.40251fd33ab74p-05 io=0x1.9c2172baaaeeep-05 perturbed=0",
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s:\n  got:  %s\n  want: %s", k, got[k], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("scenario point count: got %d, want %d", len(got), len(want))
	}
}

// TestStragglerSweepDegradation is the acceptance test for the collective
// wall under faults: as straggler severity rises, the baseline's absolute
// degradation (seconds over its own healthy time) must strictly exceed
// ParColl's, and the elapsed-time gap between the protocols must strictly
// widen.
func TestStragglerSweepDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("straggler sweep runs many replicated simulations")
	}
	p := experiments.BenchPreset()
	pts := p.StragglerSweep(64, 8, []float64{0, 2, 8})
	base := pts[0]
	if base.ParColl >= base.Ext2ph {
		t.Fatalf("healthy: ParColl (%g) not faster than ext2ph (%g)", base.ParColl, base.Ext2ph)
	}
	prevGap := base.Gap()
	for _, pt := range pts[1:] {
		extDegr := pt.Ext2ph - base.Ext2ph
		pcDegr := pt.ParColl - base.ParColl
		if extDegr <= 0 {
			t.Errorf("severity %g: ext2ph did not degrade (%+g s)", pt.Severity, extDegr)
		}
		if pcDegr >= extDegr {
			t.Errorf("severity %g: ParColl degraded %+gs, not strictly less than ext2ph's %+gs",
				pt.Severity, pcDegr, extDegr)
		}
		if pt.Gap() <= prevGap {
			t.Errorf("severity %g: gap %g s did not widen over %g s", pt.Severity, pt.Gap(), prevGap)
		}
		prevGap = pt.Gap()
	}
}
