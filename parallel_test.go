// Parallel-engine identity tests. The conservative parallel scheduler
// (internal/sim/parallel.go, DESIGN.md §12) promises bit-identical results
// to the serial engine for every worker count: same virtual end times, same
// scheduler counters, same metrics snapshots, same recovery telemetry, same
// golden hex-floats. These tests pin that promise at the top of the stack —
// full experiment runners over the whole fault-scenario catalog, baseline
// and ParColl geometry — so any divergence anywhere in the mpi/mpiio/lustre
// layers under the parallel engine fails loudly here.
package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
	"repro/internal/fault"
)

// parallelWorkers are the engine worker counts the identity tests exercise
// against the serial baseline.
var parallelWorkers = []int{2, 4}

// benchWorkers returns the bench preset with the parallel engine selected.
func benchWorkers(w int) experiments.Preset {
	p := experiments.BenchPreset()
	p.Workers = w
	return p
}

// TestParallelGoldenMetrics runs the pre-existing hex-float goldens of
// determinism_test.go under the parallel engine: every pinned figure metric
// must come out bit-identical at 2 and at 4 workers.
func TestParallelGoldenMetrics(t *testing.T) {
	for _, w := range parallelWorkers {
		got := goldenMetrics(benchWorkers(w))
		for k, want := range goldenWant {
			if got[k] != want {
				t.Errorf("workers=%d %s:\n  got:  %s\n  want: %s", w, k, got[k], want)
			}
		}
	}
}

// TestParallelScenarioCatalogMatchesSerial runs the whole fault-scenario
// catalog (baseline and ParColl geometry) serially and under the parallel
// engine and asserts bit-identical elapsed times, breakdowns, and
// perturbation counts.
func TestParallelScenarioCatalogMatchesSerial(t *testing.T) {
	serial := experiments.BenchPreset().ScenarioSuite(scenarioProcs, scenarioGroups)
	for _, w := range parallelWorkers {
		par := benchWorkers(w).ScenarioSuite(scenarioProcs, scenarioGroups)
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: suite size %d != serial %d", w, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Errorf("workers=%d %s/groups=%d: differs from serial:\n  serial:   %+v\n  parallel: %+v",
					w, serial[i].Scenario, serial[i].Groups, serial[i], par[i])
			}
		}
	}
}

// TestParallelSchedulerStatsMatchSerial pins the merged per-domain scheduler
// counters against the serial engine's: the deterministic stats merge must
// reproduce every counter exactly, not just the virtual times.
func TestParallelSchedulerStatsMatchSerial(t *testing.T) {
	sp, sst := experiments.BenchPreset().CollectiveWallStats(scenarioProcs)
	for _, w := range parallelWorkers {
		pp, pst := benchWorkers(w).CollectiveWallStats(scenarioProcs)
		if pp.Breakdown != sp.Breakdown {
			t.Errorf("workers=%d: breakdown differs:\n  serial:   %+v\n  parallel: %+v",
				w, sp.Breakdown, pp.Breakdown)
		}
		if pst != sst {
			t.Errorf("workers=%d: scheduler stats differ:\n  serial:   %+v\n  parallel: %+v",
				w, sst, pst)
		}
	}
}

// TestParallelRecoveryMatchesSerial runs every hard-failure scenario through
// the fail-stop recovery path under both engines: elapsed time, goodput,
// byte-exact read-back verification, and the full recovery telemetry
// (detections, failovers, reelections, time-to-recover) must agree.
func TestParallelRecoveryMatchesSerial(t *testing.T) {
	serial := experiments.BenchPreset()
	for _, name := range failureScenarios {
		plan, err := fault.Scenario(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, groups := range []int{1, scenarioGroups} {
			want := serial.TileUnderFailure(scenarioProcs, groups, plan)
			for _, w := range parallelWorkers {
				got := benchWorkers(w).TileUnderFailure(scenarioProcs, groups, plan)
				if got != want {
					t.Errorf("%s/groups=%d workers=%d: differs from serial:\n  serial:   %+v\n  parallel: %+v",
						name, groups, w, want, got)
				}
			}
		}
	}
}

// TestParallelObservedMatchesSerial compares a fully instrumented run
// (trace recorder and metrics registry threaded through every layer) between
// the engines: the metrics snapshot must be equal and the Perfetto export
// byte-identical — the strictest cross-engine check, since the trace records
// the exact serial order of engine-shared appends.
func TestParallelObservedMatchesSerial(t *testing.T) {
	plan, err := fault.Scenario(fault.OneStraggler)
	if err != nil {
		t.Fatal(err)
	}
	a := experiments.ObservedTileWrite(experiments.BenchPreset(), scenarioProcs, scenarioGroups, plan)
	ja, err := a.Perfetto()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parallelWorkers {
		b := experiments.ObservedTileWrite(benchWorkers(w), scenarioProcs, scenarioGroups, plan)
		if b.Result.Elapsed != a.Result.Elapsed {
			t.Errorf("workers=%d: elapsed %x != serial %x", w, b.Result.Elapsed, a.Result.Elapsed)
		}
		if !b.Snapshot.Equal(a.Snapshot) {
			t.Errorf("workers=%d: metrics snapshot differs from serial:\n--- serial\n%s\n--- parallel\n%s",
				w, a.Snapshot.String(), b.Snapshot.String())
		}
		jb, err := b.Perfetto()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jb, ja) {
			t.Errorf("workers=%d: Perfetto export differs from serial: %d vs %d bytes", w, len(jb), len(ja))
		}
	}
}

// TestParallelRunTwiceIdentical pins run-to-run identity within the parallel
// engine itself: two catalog runs at 4 workers must agree bit-for-bit, so
// goroutine scheduling can never leak into results.
func TestParallelRunTwiceIdentical(t *testing.T) {
	p := benchWorkers(4)
	first := p.ScenarioSuite(scenarioProcs, scenarioGroups)
	second := p.ScenarioSuite(scenarioProcs, scenarioGroups)
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("%s/groups=%d: parallel runs differ:\n  first:  %+v\n  second: %+v",
				first[i].Scenario, first[i].Groups, first[i], second[i])
		}
	}
}
